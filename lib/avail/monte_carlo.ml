module Duration = Aved_units.Duration
module Rng = Aved_sim.Rng
module Event_queue = Aved_sim.Event_queue
module Distribution = Aved_sim.Distribution
module Stats = Aved_stats.Stats

type config = {
  replications : int;
  horizon : Duration.t;
  seed : int;
}

let default_config =
  { replications = 32; horizon = Duration.of_years 20.; seed = 42 }

type shape =
  | Exponential
  | Weibull_shape of float
  | Lognormal_sigma of float

type shapes = { failure : shape; repair : shape }

let exponential_shapes = { failure = Exponential; repair = Exponential }

let distribution_of shape ~mean =
  if mean <= 0. then Distribution.Deterministic 0.
  else
    match shape with
    | Exponential -> Distribution.exponential_of_mean mean
    | Weibull_shape k -> Distribution.weibull_of_mean ~shape:k ~mean
    | Lognormal_sigma sigma -> Distribution.lognormal_of_mean ~sigma ~mean

type sim_class = {
  base : Tier_model.failure_class;
  failure_dist : Distribution.t;
  repair_dist : Distribution.t;
}

type event =
  | Unit_failure of int  (* class index *)
  | Repair_complete
  | Activation_complete

type state = {
  model : Tier_model.t;
  rng : Rng.t;
  queue : event Event_queue.t;
  classes : sim_class array;
  mutable active : int;  (* resources currently serving *)
  mutable activating : int;  (* spares warming up *)
  mutable spares : int;  (* cold/idle operational spares *)
  mutable clock : float;
  mutable downtime : float;
  (* Empirical attribution: index of the class whose failure last took
     the tier down (-1 before any such event), and downtime accrued per
     class. Repairs and further failures while down do not reassign the
     cause; [class_downtime] sums to [downtime] by construction. *)
  mutable down_cause : int;
  class_downtime : float array;
  (* Hooks for the job model. *)
  mutable on_advance : float -> float -> unit;
  mutable on_failure : unit -> unit;
}

(* Arm the failure clock of one serving resource: every class proposes
   a time, the earliest fires (competing risks; exact for exponentials,
   the natural generalization otherwise). *)
let schedule_unit_failure st =
  let best = ref None in
  Array.iteri
    (fun i c ->
      if c.base.Tier_model.rate > 0. then begin
        let dt = Distribution.sample c.failure_dist st.rng in
        match !best with
        | Some (_, t) when t <= dt -> ()
        | Some _ | None -> best := Some (i, dt)
      end)
    st.classes;
  match !best with
  | Some (i, dt) ->
      Event_queue.push st.queue ~time:(st.clock +. dt) (Unit_failure i)
  | None -> ()

let make_state model rng shapes =
  let classes =
    Array.of_list
      (List.map
         (fun (c : Tier_model.failure_class) ->
           {
             base = c;
             failure_dist =
               distribution_of shapes.failure ~mean:(1. /. c.rate);
             repair_dist =
               distribution_of shapes.repair
                 ~mean:(Duration.seconds c.mttr);
           })
         model.Tier_model.classes)
  in
  let st =
    {
      model;
      rng;
      queue = Event_queue.create ();
      classes;
      active = model.Tier_model.n_active;
      activating = 0;
      spares = model.Tier_model.n_spare;
      clock = 0.;
      downtime = 0.;
      down_cause = -1;
      class_downtime = Array.make (Array.length classes) 0.;
      on_advance = (fun _ _ -> ());
      on_failure = (fun () -> ());
    }
  in
  for _ = 1 to st.active do
    schedule_unit_failure st
  done;
  st

let is_up st = st.active >= st.model.Tier_model.n_min

let handle_event st = function
  | Unit_failure i ->
      let c = st.classes.(i) in
      st.on_failure ();
      let was_up = is_up st in
      st.active <- st.active - 1;
      if was_up && not (is_up st) then st.down_cause <- i;
      let repair_delay = Distribution.sample c.repair_dist st.rng in
      Event_queue.push st.queue ~time:(st.clock +. repair_delay) Repair_complete;
      (* Spare activation: only when failover is considered for this
         mode, a spare is free, and the active set is short. *)
      if
        c.base.Tier_model.failover_considered && st.spares > 0
        && st.active + st.activating < st.model.Tier_model.n_active
      then begin
        st.spares <- st.spares - 1;
        st.activating <- st.activating + 1;
        Event_queue.push st.queue
          ~time:(st.clock +. Duration.seconds c.base.Tier_model.failover_time)
          Activation_complete
      end
  | Repair_complete ->
      (* A repaired resource rejoins service directly when the active
         set is short (its components restarted as part of the MTTR);
         otherwise it becomes a spare. *)
      if st.active + st.activating < st.model.Tier_model.n_active then begin
        st.active <- st.active + 1;
        schedule_unit_failure st
      end
      else st.spares <- st.spares + 1
  | Activation_complete ->
      st.activating <- st.activating - 1;
      st.active <- st.active + 1;
      schedule_unit_failure st

let run st ~stop ~continue =
  let finished = ref false in
  while (not !finished) && continue () do
    let t_event =
      match Event_queue.peek_time st.queue with
      | Some t -> t
      | None -> Float.infinity
    in
    let t_next = Float.min stop t_event in
    if Float.is_finite t_next then begin
      st.on_advance st.clock t_next;
      if not (is_up st) then begin
        let dt = t_next -. st.clock in
        st.downtime <- st.downtime +. dt;
        if st.down_cause >= 0 then
          st.class_downtime.(st.down_cause) <-
            st.class_downtime.(st.down_cause) +. dt
      end;
      st.clock <- t_next
    end;
    if t_next >= stop then finished := true
    else
      match Event_queue.pop st.queue with
      | Some (_, ev) -> handle_event st ev
      | None -> assert false
  done

let replications_counter =
  Aved_telemetry.Telemetry.Counter.make "sim.replications"

let replicate config ~body =
  Aved_telemetry.Telemetry.Counter.add replications_counter
    config.replications;
  let master = Rng.create config.seed in
  List.init config.replications (fun _ -> body (Rng.split master))

let downtime_fractions ?(config = default_config)
    ?(shapes = exponential_shapes) model =
  let horizon = Duration.seconds config.horizon in
  let samples =
    replicate config ~body:(fun rng ->
        let st = make_state model rng shapes in
        run st ~stop:horizon ~continue:(fun () -> true);
        st.downtime /. horizon)
  in
  Stats.summarize (Array.of_list samples)

let downtime_fraction ?config ?shapes model =
  (downtime_fractions ?config ?shapes model).mean

(* Empirical attribution: each replication charges every down interval
   to the class whose failure took the tier down, so the per-class sums
   equal the replication's downtime exactly; the attribution replays
   the same seeded trajectories as {!downtime_fraction}. A tier built
   down (n_min > n_active, impossible via {!Tier_model.build}) would
   leave its initial downtime unattributed. *)
let downtime_by_class ?(config = default_config)
    ?(shapes = exponential_shapes) model =
  let horizon = Duration.seconds config.horizon in
  let j = List.length model.Tier_model.classes in
  let sums = Array.make (Stdlib.max 1 j) 0. in
  let per_replication =
    replicate config ~body:(fun rng ->
        let st = make_state model rng shapes in
        run st ~stop:horizon ~continue:(fun () -> true);
        st.class_downtime)
  in
  List.iter
    (fun cd -> Array.iteri (fun i v -> sums.(i) <- sums.(i) +. v) cd)
    per_replication;
  let n = float_of_int config.replications in
  List.mapi
    (fun i (c : Tier_model.failure_class) ->
      (c.Tier_model.label, sums.(i) /. n /. horizon))
    model.Tier_model.classes

let downtime_fraction_samples ?(config = default_config)
    ?(shapes = exponential_shapes) model =
  let horizon = Duration.seconds config.horizon in
  Array.of_list
    (replicate config ~body:(fun rng ->
         let st = make_state model rng shapes in
         run st ~stop:horizon ~continue:(fun () -> true);
         st.downtime /. horizon))

let exceedance_probability ?(config = default_config) ?shapes model ~budget =
  let budget_fraction =
    Duration.seconds budget /. Duration.seconds config.horizon
  in
  let samples = downtime_fraction_samples ~config ?shapes model in
  let over =
    Array.fold_left
      (fun acc f -> if f > budget_fraction then acc + 1 else acc)
      0 samples
  in
  float_of_int over /. float_of_int (Array.length samples)

let annual_downtime ?config ?shapes model =
  Duration.of_years (downtime_fraction ?config ?shapes model)

let job_completion_times ?(config = default_config)
    ?(shapes = exponential_shapes) model ~job_size =
  if job_size <= 0. then
    invalid_arg "Monte_carlo.job_completion_times: job_size must be positive";
  let rate_per_second =
    model.Tier_model.effective_performance /. 3600. (* units/hour -> /s *)
  in
  if rate_per_second <= 0. then
    raise (Tier_model.Rejected "Monte_carlo.job_completion_times: no throughput");
  let lw_seconds = Option.map Duration.seconds model.Tier_model.loss_window in
  let cap = Duration.seconds (Duration.of_years 1000.) in
  let samples =
    replicate config ~body:(fun rng ->
        let st = make_state model rng shapes in
        let work = ref 0. in
        let checkpointed = ref 0. in
        let since_checkpoint = ref 0. in
        let completion = ref None in
        let advance t0 t1 =
          if is_up st && !completion = None then begin
            let remaining = ref (t1 -. t0) in
            let now = ref t0 in
            while !remaining > 0. && !completion = None do
              let to_checkpoint =
                match lw_seconds with
                | Some lw -> lw -. !since_checkpoint
                | None -> Float.infinity
              in
              let dt = Float.min !remaining to_checkpoint in
              let to_done = (job_size -. !work) /. rate_per_second in
              if to_done <= dt then begin
                completion := Some (!now +. to_done);
                work := job_size
              end
              else begin
                work := !work +. (dt *. rate_per_second);
                since_checkpoint := !since_checkpoint +. dt;
                now := !now +. dt;
                remaining := !remaining -. dt;
                match lw_seconds with
                | Some lw when !since_checkpoint >= lw -. 1e-9 ->
                    checkpointed := !work;
                    since_checkpoint := 0.
                | Some _ | None -> ()
              end
            done
          end
        in
        let on_failure () =
          if !completion = None then begin
            work := !checkpointed;
            since_checkpoint := 0.
          end
        in
        st.on_advance <- advance;
        st.on_failure <- on_failure;
        run st ~stop:cap ~continue:(fun () -> !completion = None);
        match !completion with
        | Some t -> t /. 3600. (* hours *)
        | None -> failwith "Monte_carlo: job did not finish in 1000 years")
  in
  Stats.summarize (Array.of_list samples)
