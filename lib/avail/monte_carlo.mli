(** Engine C: Monte-Carlo discrete-event simulation of a tier.

    An independent cross-check of the analytic engines: N = n + s
    resources; every serving resource carries its own failure clock
    (one candidate time per failure class, earliest wins), repairs take
    a random time with the class MTTR as mean, failover (spare
    activation) delays are deterministic, and spares are activated
    whenever a failure is failover-eligible and a spare is free.
    Downtime accrues while fewer than m resources serve.

    With the default exponential shapes the model matches the Markov
    engines; Weibull and lognormal shapes support sensitivity ablations
    the analytic engines cannot express (all shapes are mean-preserving,
    so only the distribution tail changes).

    For finite jobs the same event loop drives a work/checkpoint model:
    work accrues at the tier's effective rate while the tier is up,
    checkpoints complete every loss-window of running time, and every
    failure rewinds work to the last checkpoint. *)

type config = {
  replications : int;
  horizon : Aved_units.Duration.t;  (** Simulated time per replication. *)
  seed : int;
}

val default_config : config
(** 32 replications of 20 simulated years, seed 42. *)

(** Mean-preserving distribution families for the ablation study. *)
type shape =
  | Exponential
  | Weibull_shape of float
      (** Weibull with this shape parameter; < 1 gives burstier
          failures (decreasing hazard), > 1 more regular ones. *)
  | Lognormal_sigma of float
      (** Lognormal with this log-space standard deviation — heavy
          right tails for repair times. *)

type shapes = { failure : shape; repair : shape }

val exponential_shapes : shapes

val downtime_fractions :
  ?config:config -> ?shapes:shapes -> Tier_model.t ->
  Aved_stats.Stats.summary
(** Summary over replications of the per-replication downtime fraction. *)

val downtime_fraction :
  ?config:config -> ?shapes:shapes -> Tier_model.t -> float
(** Mean over replications. *)

val annual_downtime :
  ?config:config -> ?shapes:shapes -> Tier_model.t -> Aved_units.Duration.t

val downtime_by_class :
  ?config:config -> ?shapes:shapes -> Tier_model.t -> (string * float) list
(** Empirical attribution of the downtime fraction to the failure
    classes, in model order: every down interval is charged to the
    class whose failure took the tier down (repairs and further
    failures while already down do not reassign the cause). Replays the
    same seeded trajectories as {!downtime_fraction}, so the per-class
    fractions sum to its result up to float accumulation order. *)

val job_completion_times :
  ?config:config -> ?shapes:shapes -> Tier_model.t -> job_size:float ->
  Aved_stats.Stats.summary
(** Summary (in hours) over replications of the wall-clock completion
    time of a job of [job_size] work units at the tier's effective
    performance (work units per hour). The [horizon] field is ignored;
    a replication that fails to finish within 1000 simulated years
    raises [Failure]. *)

val downtime_fraction_samples :
  ?config:config -> ?shapes:shapes -> Tier_model.t -> float array
(** The raw per-replication downtime fractions (one per replication,
    each over the configured horizon) — for quantiles and risk curves. *)

val exceedance_probability :
  ?config:config -> ?shapes:shapes -> Tier_model.t ->
  budget:Aved_units.Duration.t -> float
(** Fraction of replications whose downtime over the horizon exceeds
    [budget] scaled to the horizon — with a one-year horizon, the
    probability that a given year busts the annual budget. The paper's
    engine predicts expected downtime; this is the corresponding risk
    view. *)
