module Expr = Aved_expr.Expr

type t = Any | Scalar | Duration | Per_duration | Money

let to_string = function
  | Any -> "dimensionless"
  | Scalar -> "count/fraction"
  | Duration -> "duration"
  | Per_duration -> "rate (1/duration)"
  | Money -> "money"

(* The lattice is deliberately loose where the paper's own formulas are
   loose: a rate like [10/cpi] is compared against the fraction [100%]
   in Table 1, because duration parameters are bound as raw minutes (the
   "minutes convention" of Mech_impact.eval). So Per_duration and Scalar
   unify. Duration and Money never dissolve into scalars: adding minutes
   to a count, or comparing money to time, is always a bug. *)
let unify a b =
  match (a, b) with
  | Any, d | d, Any -> Some d
  | Scalar, Scalar -> Some Scalar
  | Duration, Duration -> Some Duration
  | Money, Money -> Some Money
  | Per_duration, Per_duration -> Some Per_duration
  | (Per_duration | Scalar), (Per_duration | Scalar) -> Some Scalar
  | (Duration | Money), _ | _, (Duration | Money) -> None

type product = Dim of t | Nonsense of string

(* a · b. Nonsensical products in this domain: squared time, squared
   money, and money·time. *)
let mul a b =
  match (a, b) with
  | Any, d | d, Any -> Dim d
  | Scalar, d | d, Scalar -> Dim d
  | Duration, Per_duration | Per_duration, Duration -> Dim Scalar
  | Duration, Duration -> Nonsense "duration x duration (time squared)"
  | Money, Money -> Nonsense "money x money"
  | Money, (Duration | Per_duration) | (Duration | Per_duration), Money ->
      Nonsense "money x time"
  | Per_duration, Per_duration -> Nonsense "rate x rate (1/time squared)"

(* a / b. *)
let div a b =
  match (a, b) with
  | d, (Any | Scalar) -> Dim d
  | Money, Money -> Dim Scalar
  | _, Money -> Nonsense "money in a denominator"
  | Any, Duration | Scalar, Duration -> Dim Per_duration
  | Duration, Duration -> Dim Scalar
  | Per_duration, Duration -> Nonsense "rate / duration (1/time squared)"
  | Money, Duration -> Nonsense "money / duration"
  | Any, Per_duration | Scalar, Per_duration -> Dim Duration
  | Duration, Per_duration -> Nonsense "duration / rate (time squared)"
  | Per_duration, Per_duration -> Dim Scalar
  | Money, Per_duration -> Nonsense "money x time"

type reporter = Diagnostic.severity -> string -> unit

let operator_name = function
  | `Add -> "+"
  | `Sub -> "-"
  | `Min -> "min"
  | `Max -> "max"
  | `Compare -> "comparison"
  | `Branches -> "if branches"

let rec infer ~env ~(report : reporter) (expr : Expr.t) : t =
  let unify_or_report op a b =
    match unify a b with
    | Some d -> d
    | None ->
        report Diagnostic.Error
          (Printf.sprintf "dimension mismatch in %s: %s vs %s"
             (operator_name op) (to_string a) (to_string b));
        Any
  in
  let product_or_report what result =
    match result with
    | Dim d -> d
    | Nonsense why ->
        report Diagnostic.Warning
          (Printf.sprintf "suspicious %s: %s" what why);
        Any
  in
  match expr with
  | Const _ -> Any
  | Var v -> ( match env v with Some d -> d | None -> Any)
  | Add (a, b) ->
      unify_or_report `Add (infer ~env ~report a) (infer ~env ~report b)
  | Sub (a, b) ->
      unify_or_report `Sub (infer ~env ~report a) (infer ~env ~report b)
  | Mul (a, b) ->
      product_or_report "product"
        (mul (infer ~env ~report a) (infer ~env ~report b))
  | Div (a, b) ->
      product_or_report "division"
        (div (infer ~env ~report a) (infer ~env ~report b))
  | Neg a -> infer ~env ~report a
  | Call ("min", [ a; b ]) ->
      unify_or_report `Min (infer ~env ~report a) (infer ~env ~report b)
  | Call ("max", [ a; b ]) ->
      unify_or_report `Max (infer ~env ~report a) (infer ~env ~report b)
  | Call (("floor" | "ceil" | "abs"), [ a ]) -> infer ~env ~report a
  | Call (("exp" | "log") as fn, [ a ]) ->
      (match unify (infer ~env ~report a) Scalar with
      | Some _ -> ()
      | None ->
          report Diagnostic.Warning
            (Printf.sprintf "%s applied to a dimensioned value" fn));
      Any
  | Call ("pow", [ a; b ]) ->
      (match unify (infer ~env ~report b) Scalar with
      | Some _ -> ()
      | None ->
          report Diagnostic.Warning "dimensioned value used as an exponent");
      ignore (infer ~env ~report a);
      Any
  | Call (_, args) ->
      List.iter (fun a -> ignore (infer ~env ~report a)) args;
      Any
  | If (_, lhs, rhs, then_, else_) ->
      ignore
        (unify_or_report `Compare (infer ~env ~report lhs)
           (infer ~env ~report rhs));
      unify_or_report `Branches (infer ~env ~report then_)
        (infer ~env ~report else_)
