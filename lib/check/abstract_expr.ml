module Expr = Aved_expr.Expr

(* Abstract interpretation of the expression language over the interval
   domain, with the dimension lattice from [Dim] riding along. Unlike
   [Dim.infer] this walk is silent: dimension conflicts have already
   been reported by the lint pass, so here they just widen to [Any]
   rather than re-reporting. *)

type value = { range : Interval.t; dim : Dim.t }

let join_dim a b = match Dim.unify a b with Some d -> d | None -> Dim.Any
let product_dim = function Dim.Dim d -> d | Dim.Nonsense _ -> Dim.Any

(* Whether [a cmp b] is certainly true, certainly false, or undecided
   over the boxes. Agrees with [Expr.compare_holds] on every pair of
   concrete members when it returns [Some _]. *)
let decide cmp (a : Interval.t) (b : Interval.t) =
  let lo = Interval.lo and hi = Interval.hi in
  match (cmp : Expr.comparison) with
  | Le ->
      if hi a <= lo b then Some true
      else if lo a > hi b then Some false
      else None
  | Lt ->
      if hi a < lo b then Some true
      else if lo a >= hi b then Some false
      else None
  | Ge ->
      if lo a >= hi b then Some true
      else if hi a < lo b then Some false
      else None
  | Gt ->
      if lo a > hi b then Some true
      else if hi a <= lo b then Some false
      else None
  | Eq ->
      if Interval.is_point a && Interval.is_point b && lo a = lo b then
        Some true
      else if hi a < lo b || hi b < lo a then Some false
      else None
  | Ne ->
      if hi a < lo b || hi b < lo a then Some true
      else if Interval.is_point a && Interval.is_point b && lo a = lo b then
        Some false
      else None

let rec eval ~env (expr : Expr.t) : value =
  match expr with
  | Const c -> { range = Interval.point c; dim = Dim.Any }
  | Var v -> (
      match env v with
      | Some value -> value
      | None -> raise (Expr.Unbound_variable v))
  | Add (a, b) ->
      let va = eval ~env a and vb = eval ~env b in
      { range = Interval.add va.range vb.range; dim = join_dim va.dim vb.dim }
  | Sub (a, b) ->
      let va = eval ~env a and vb = eval ~env b in
      { range = Interval.sub va.range vb.range; dim = join_dim va.dim vb.dim }
  | Mul (a, b) ->
      let va = eval ~env a and vb = eval ~env b in
      {
        range = Interval.mul va.range vb.range;
        dim = product_dim (Dim.mul va.dim vb.dim);
      }
  | Div (a, b) ->
      let va = eval ~env a and vb = eval ~env b in
      {
        range = Interval.div va.range vb.range;
        dim = product_dim (Dim.div va.dim vb.dim);
      }
  | Neg a ->
      let va = eval ~env a in
      { va with range = Interval.neg va.range }
  | Call ("min", [ a; b ]) ->
      let va = eval ~env a and vb = eval ~env b in
      { range = Interval.min_ va.range vb.range; dim = join_dim va.dim vb.dim }
  | Call ("max", [ a; b ]) ->
      let va = eval ~env a and vb = eval ~env b in
      { range = Interval.max_ va.range vb.range; dim = join_dim va.dim vb.dim }
  | Call ("abs", [ a ]) ->
      let va = eval ~env a in
      { va with range = Interval.abs va.range }
  | Call ("floor", [ a ]) ->
      let va = eval ~env a in
      { va with range = Interval.floor va.range }
  | Call ("ceil", [ a ]) ->
      let va = eval ~env a in
      { va with range = Interval.ceil va.range }
  | Call ("exp", [ a ]) ->
      { range = Interval.exp (eval ~env a).range; dim = Dim.Any }
  | Call ("log", [ a ]) ->
      { range = Interval.log (eval ~env a).range; dim = Dim.Any }
  | Call ("sqrt", [ a ]) ->
      { range = Interval.sqrt (eval ~env a).range; dim = Dim.Any }
  | Call ("pow", [ a; b ]) ->
      {
        range = Interval.pow (eval ~env a).range (eval ~env b).range;
        dim = Dim.Any;
      }
  | Call (_, args) ->
      (* Unknown builtins cannot be constructed through the parser, but
         stay sound if one appears. *)
      List.iter (fun a -> ignore (eval ~env a)) args;
      { range = Interval.top; dim = Dim.Any }
  | If (cmp, lhs, rhs, then_, else_) -> (
      let vl = eval ~env lhs and vr = eval ~env rhs in
      match decide cmp vl.range vr.range with
      | Some true -> eval ~env then_
      | Some false -> eval ~env else_
      | None ->
          let vt = eval ~env then_ and ve = eval ~env else_ in
          {
            range = Interval.hull vt.range ve.range;
            dim = join_dim vt.dim ve.dim;
          })

let eval_range ~env expr =
  let env v = Option.map (fun range -> { range; dim = Dim.Any }) (env v) in
  (eval ~env expr).range

(* Difference-quotient analysis: for the expression [e], the variable
   [var] ranging over its interval and every other variable fixed at
   any point of its own interval, [slope] bounds both the value of [e]
   and every difference quotient (e(x2) - e(x1)) / (x2 - x1), x1 < x2.
   A quotient interval with lo >= 0 therefore proves [e] nondecreasing
   in [var] over the whole box — the sound replacement for the
   point-sampling monotonicity lint.

   The composite rules are the interval mean-value theorem where a
   derivative exists ([exp], [log], [sqrt], [pow]) and direct algebra
   elsewhere:
     q(f*g) = f2*qg + g1*qf          in  F*Qg + G*Qf
     q(f/g) = (g1*qf - f1*qg)/(g1*g2) in (G*Qf - F*Qg)/(G*G), 0 not in G
     q(min(f,g)), q(max(f,g))         in  hull(Qf, Qg)
   Branching [If] is analyzed per fixed assignment of the other
   variables: a condition that does not mention [var] selects one fixed
   branch as [var] sweeps, so the quotient stays within the branch
   hull; a condition on [var] that the boxes cannot decide may switch
   branches discontinuously, which only the trivial bound covers. *)

type slope = { value : Interval.t; quotient : Interval.t }

let nonneg = Interval.of_bounds 0. infinity
let nonpos = Interval.of_bounds neg_infinity 0.
let zero = Interval.point 0.

let rec slope ~var ~env (expr : Expr.t) : slope =
  match expr with
  | Const c -> { value = Interval.point c; quotient = zero }
  | Var v -> (
      match env v with
      | Some value ->
          { value; quotient = (if v = var then Interval.point 1. else zero) }
      | None -> raise (Expr.Unbound_variable v))
  | Add (a, b) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      {
        value = Interval.add sa.value sb.value;
        quotient = Interval.add sa.quotient sb.quotient;
      }
  | Sub (a, b) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      {
        value = Interval.sub sa.value sb.value;
        quotient = Interval.sub sa.quotient sb.quotient;
      }
  | Mul (a, b) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      {
        value = Interval.mul sa.value sb.value;
        quotient =
          Interval.add
            (Interval.mul sa.value sb.quotient)
            (Interval.mul sb.value sa.quotient);
      }
  | Div (a, b) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      let value = Interval.div sa.value sb.value in
      let quotient =
        if Interval.contains_zero sb.value then Interval.top
        else
          Interval.div
            (Interval.sub
               (Interval.mul sb.value sa.quotient)
               (Interval.mul sa.value sb.quotient))
            (Interval.mul sb.value sb.value)
      in
      { value; quotient }
  | Neg a ->
      let sa = slope ~var ~env a in
      { value = Interval.neg sa.value; quotient = Interval.neg sa.quotient }
  | Call (("min" | "max") as fn, [ a; b ]) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      let combine = if fn = "min" then Interval.min_ else Interval.max_ in
      {
        value = combine sa.value sb.value;
        quotient = Interval.hull sa.quotient sb.quotient;
      }
  | Call ("abs", [ a ]) ->
      let sa = slope ~var ~env a in
      let quotient =
        if Interval.lo sa.value >= 0. then sa.quotient
        else if Interval.hi sa.value <= 0. then Interval.neg sa.quotient
        else Interval.hull sa.quotient (Interval.neg sa.quotient)
      in
      { value = Interval.abs sa.value; quotient }
  | Call (("floor" | "ceil") as fn, [ a ]) ->
      let sa = slope ~var ~env a in
      let value =
        if fn = "floor" then Interval.floor sa.value else Interval.ceil sa.value
      in
      (* Steps make the local quotient unbounded; only the direction of
         variation survives. *)
      let quotient =
        if Interval.equal sa.quotient zero then zero
        else if Interval.lo sa.quotient >= 0. then nonneg
        else if Interval.hi sa.quotient <= 0. then nonpos
        else Interval.top
      in
      { value; quotient }
  | Call ("exp", [ a ]) ->
      let sa = slope ~var ~env a in
      {
        value = Interval.exp sa.value;
        quotient = Interval.mul (Interval.exp sa.value) sa.quotient;
      }
  | Call ("log", [ a ]) ->
      let sa = slope ~var ~env a in
      let quotient =
        if Interval.lo sa.value > 0. then Interval.div sa.quotient sa.value
        else Interval.top
      in
      { value = Interval.log sa.value; quotient }
  | Call ("sqrt", [ a ]) ->
      let sa = slope ~var ~env a in
      let quotient =
        if Interval.lo sa.value > 0. then
          Interval.div sa.quotient
            (Interval.mul (Interval.point 2.) (Interval.sqrt sa.value))
        else Interval.top
      in
      { value = Interval.sqrt sa.value; quotient }
  | Call ("pow", [ a; b ]) ->
      let sa = slope ~var ~env a and sb = slope ~var ~env b in
      let value = Interval.pow sa.value sb.value in
      let quotient =
        if
          Interval.is_point sb.value
          && Interval.equal sb.quotient zero
          && Interval.lo sa.value > 0.
        then
          (* d/dx xi^k = k * xi^(k-1), any real constant k, base > 0. *)
          let k = Interval.lo sb.value in
          Interval.mul
            (Interval.mul (Interval.point k)
               (Interval.pow sa.value (Interval.point (k -. 1.))))
            sa.quotient
        else Interval.top
      in
      { value; quotient }
  | Call (_, args) ->
      List.iter (fun a -> ignore (slope ~var ~env a)) args;
      { value = Interval.top; quotient = Interval.top }
  | If (cmp, lhs, rhs, then_, else_) -> (
      let sl = slope ~var ~env lhs and sr = slope ~var ~env rhs in
      match decide cmp sl.value sr.value with
      | Some true -> slope ~var ~env then_
      | Some false -> slope ~var ~env else_
      | None ->
          let st = slope ~var ~env then_ and se = slope ~var ~env else_ in
          let mentions e = List.mem var (Expr.variables e) in
          let quotient =
            if mentions lhs || mentions rhs then Interval.top
            else Interval.hull st.quotient se.quotient
          in
          { value = Interval.hull st.value se.value; quotient })

type monotonicity = Constant | Nondecreasing | Nonincreasing | Unknown

let monotonicity ~var ~env expr =
  let { quotient; _ } = slope ~var ~env expr in
  let lo = Interval.lo quotient and hi = Interval.hi quotient in
  if lo >= 0. && hi <= 0. then Constant
  else if lo >= 0. then Nondecreasing
  else if hi <= 0. then Nonincreasing
  else Unknown
