(** Outward-rounded interval arithmetic.

    The abstract domain of the checker's whole-domain analyses: a value
    [t] stands for the closed set of reals [[lo t, hi t]]. Endpoints may
    be infinite but never NaN; operations whose concrete counterpart can
    produce NaN widen to {!top}. Inexact operations round their
    endpoints outward ([Float.pred]/[Float.succ]), so for every
    operation [op] here and concrete floats [x ∈ a], [y ∈ b]:
    [mem (op_concrete x y) (op a b)] holds. *)

type t

val top : t
(** The whole real line, [[-inf, +inf]]. *)

val is_top : t -> bool

val point : float -> t
(** Singleton interval; [point nan] is {!top}. *)

val of_bounds : float -> float -> t
(** [of_bounds lo hi] normalizes: NaN endpoints give {!top}, reversed
    bounds are swapped. *)

val lo : t -> float
val hi : t -> float
val is_point : t -> bool

val mem : float -> t -> bool
(** Membership. NaN is a member only of {!top}. *)

val subset : t -> t -> bool
val hull : t -> t -> t

val meet : t -> t -> t option
(** Intersection; [None] when disjoint. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** {!top} when the divisor contains zero. *)

val inv : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val exp : t -> t

val log : t -> t
(** {!top} when the argument can be negative. *)

val sqrt : t -> t
(** {!top} when the argument can be negative. *)

val floor : t -> t
val ceil : t -> t

val pow : t -> t -> t
(** Corner-evaluated [x ** y]; {!top} unless the base is strictly
    positive. *)

val clamp : lo:float -> hi:float -> t -> t
(** Intersect with [[lo, hi]], collapsing to the nearest bound when the
    interval lies entirely outside. *)

val contains_zero : t -> bool
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
