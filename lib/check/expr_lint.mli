(** Expression lints: constant-foldable pitfalls the evaluator only
    hits at runtime, plus semantic probes over declared ranges. *)

type reporter = Diagnostic.severity -> code:string -> string -> unit

val lint :
  bindings:(string * float) list ->
  report:reporter ->
  Aved_expr.Expr.t ->
  unit
(** Walks the expression reporting:
    - ["div-by-zero"] (Error): division by a constant zero;
    - ["unreachable-branch"] (Warning): an [if] whose condition folds
      to a constant, leaving one branch dead;
    - ["discontinuity"] (Warning): a piecewise split
      [if v <= K then f else g] with [f <> g] at [v = K]. [bindings]
      supplies representative values for the expression's other free
      variables (e.g. duration parameters at their range midpoints). *)

val check_monotone_performance :
  n_values:int list ->
  report:reporter ->
  Aved_perf.Perf_function.t ->
  unit
(** Probes a performance function over the declared resource counts
    (up to 64 samples) and reports ["non-monotone"] (Warning) when
    throughput decreases as resources are added. Constant functions are
    exempt. *)
