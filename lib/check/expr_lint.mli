(** Expression lints: constant-foldable pitfalls the evaluator only
    hits at runtime, plus semantic probes over declared ranges. *)

type reporter = Diagnostic.severity -> code:string -> string -> unit

val lint :
  bindings:(string * float) list ->
  report:reporter ->
  Aved_expr.Expr.t ->
  unit
(** Walks the expression reporting:
    - ["div-by-zero"] (Error): division by a constant zero;
    - ["unreachable-branch"] (Warning): an [if] whose condition folds
      to a constant, leaving one branch dead;
    - ["discontinuity"] (Warning): a piecewise split
      [if v <= K then f else g] with [f <> g] at [v = K]. [bindings]
      supplies representative values for the expression's other free
      variables (e.g. duration parameters at their range midpoints). *)

val check_monotone_performance :
  n_values:int list ->
  report:reporter ->
  Aved_perf.Perf_function.t ->
  unit
(** Reports ["non-monotone"] (Warning) when throughput decreases as
    resources are added. Expressions are first run through the
    difference-quotient analysis of {!Abstract_expr.monotonicity},
    which proves monotonicity over the whole declared range; only
    unproven expressions fall back to point sampling (up to 64 probes),
    which also supplies the concrete witness pair in the message.
    Tables are checked exactly at their breakpoints. Constant functions
    are exempt. *)
