module L = Aved_spec.Line_lexer
module Spec = Aved_spec.Spec
module Model = Aved_model
module Ctmc = Aved_markov.Ctmc
module Tier_model = Aved_avail.Tier_model
module Exact = Aved_avail.Exact

(* --- CTMC well-formedness -------------------------------------------- *)

let max_ctmc_states = 4096
let row_residual_tolerance = 1e-9

let take_sample n list =
  let rec loop i = function
    | [] -> []
    | _ when i = n -> []
    | x :: rest -> x :: loop (i + 1) rest
  in
  loop 0 list

let format_states states =
  let shown = take_sample 5 states in
  let suffix = if List.length states > 5 then ", ..." else "" in
  String.concat ", " (List.map string_of_int shown) ^ suffix

let check_ctmc ?(context = "CTMC") chain =
  let wf = Ctmc.well_formedness chain in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if wf.max_row_residual > row_residual_tolerance then
    add
      (Diagnostic.errorf ~code:"ctmc-row-sum"
         "%s: generator rows do not sum to 0 (max residual %g)" context
         wf.max_row_residual);
  List.iter
    (fun (src, dst, rate) ->
      add
        (Diagnostic.errorf ~code:"ctmc-negative-rate"
           "%s: negative rate %g on transition %d -> %d" context rate src dst))
    wf.negative_rates;
  if Ctmc.num_states chain > 1 then begin
    if wf.unreachable <> [] then
      add
        (Diagnostic.errorf ~code:"ctmc-unreachable"
           "%s: %d state(s) unreachable from the all-up state: %s" context
           (List.length wf.unreachable)
           (format_states wf.unreachable));
    if wf.cannot_reach_start <> [] then
      add
        (Diagnostic.errorf ~code:"ctmc-absorbing"
           "%s: %d state(s) cannot return to the all-up state (absorbing \
            class): %s"
           context
           (List.length wf.cannot_reach_start)
           (format_states wf.cannot_reach_start))
  end;
  List.rev !diags

(* One representative design per (tier, resource option): the smallest
   admissible resource count, no spares, the first setting of every
   mechanism. Demand is what that design actually delivers, so the
   option is never rejected for performance reasons that are the
   search's business, not the checker's. *)
let check_tier_option ~infra ~(service : Model.Service.t)
    ~(tier : Model.Service.tier) ~(option : Model.Service.resource_option) =
  let context =
    Printf.sprintf "tier %s, resource %s" tier.tier_name option.resource
  in
  match Model.Infrastructure.find_resource infra option.resource with
  | None -> [] (* Reported by the cross-reference pass. *)
  | Some resource -> (
      let mechs = Model.Infrastructure.resource_mechanisms infra resource in
      let settings =
        List.map
          (fun (m : Model.Mechanism.t) ->
            (m.name, Model.Mechanism.first_setting m))
          mechs
      in
      let n = Model.Int_range.min_value option.n_active in
      match
        let design =
          Model.Design.tier_design ~tier_name:tier.tier_name
            ~resource:option.resource ~n_active:(max 1 n)
            ~mechanism_settings:settings ()
        in
        let demand =
          if Model.Service.is_finite_job service then None
          else
            Some
              (Tier_model.effective_performance_of ~option ~settings
                 ~n:(max 1 n))
        in
        Tier_model.build ~infra ~option ~design ~demand
      with
      | exception Aved_expr.Expr.Unbound_variable v ->
          [
            Diagnostic.errorf ~code:"free-var"
              "%s: performance model references undeclared variable %s" context
              v;
          ]
      | exception Tier_model.Rejected reason ->
          [
            Diagnostic.warningf ~code:"option-rejected"
              "%s: the smallest design of this option is rejected: %s" context
              reason;
          ]
      | exception Invalid_argument message ->
          [
            Diagnostic.errorf ~code:"model-error" "%s: %s" context message;
          ]
      | model ->
          let rate_diags =
            List.concat_map
              (fun (c : Tier_model.failure_class) ->
                if (not (Float.is_finite c.rate)) || c.rate <= 0. then
                  [
                    Diagnostic.errorf ~code:"bad-rate"
                      "%s: failure class %s has rate %g" context c.label c.rate;
                  ]
                else [])
              model.classes
          in
          let ctmc_diags =
            if Exact.num_states model > max_ctmc_states then []
            else
              match Exact.chain ~max_states:max_ctmc_states model with
              | chain -> check_ctmc ~context chain
              | exception Invalid_argument _ -> []
          in
          rate_diags @ ctmc_diags)

(* CTMC well-formedness at the mechanism-settings mttr corners. The
   representative audit above fixes one settings assignment (the first
   of every mechanism) — a chain that degenerates only under the
   slowest or fastest repair setting escapes it. When the bounds
   analysis is in play we know the interval-minimal and -maximal
   corners; audit both. *)
let corner_audit ~infra ~(service : Model.Service.t) ~tier_name
    ~(option : Model.Service.resource_option) =
  match Model.Infrastructure.find_resource infra option.resource with
  | None -> []
  | Some resource ->
      let lo, hi = Bounds.mttr_corner_settings ~infra ~resource in
      let corners =
        if lo = hi then [ ("mttr-min corner", lo) ]
        else [ ("mttr-min corner", lo); ("mttr-max corner", hi) ]
      in
      List.concat_map
        (fun (tag, settings) ->
          let context =
            Printf.sprintf "tier %s, resource %s (%s)" tier_name
              option.resource tag
          in
          let n = max 1 (Model.Int_range.min_value option.n_active) in
          match
            let design =
              Model.Design.tier_design ~tier_name ~resource:option.resource
                ~n_active:n ~mechanism_settings:settings ()
            in
            let demand =
              if Model.Service.is_finite_job service then None
              else
                Some (Tier_model.effective_performance_of ~option ~settings ~n)
            in
            Tier_model.build ~infra ~option ~design ~demand
          with
          | exception Aved_expr.Expr.Unbound_variable _ -> []
          | exception Tier_model.Rejected _ -> []
          | exception Invalid_argument _ ->
              [] (* all three already reported by the representative audit *)
          | model ->
              let rate_diags =
                List.concat_map
                  (fun (c : Tier_model.failure_class) ->
                    if (not (Float.is_finite c.rate)) || c.rate <= 0. then
                      [
                        Diagnostic.errorf ~code:"bad-rate"
                          "%s: failure class %s has rate %g" context c.label
                          c.rate;
                      ]
                    else [])
                  model.classes
              in
              let ctmc_diags =
                if Exact.num_states model > max_ctmc_states then []
                else
                  match Exact.chain ~max_states:max_ctmc_states model with
                  | chain -> check_ctmc ~context chain
                  | exception Invalid_argument _ -> []
              in
              rate_diags @ ctmc_diags)
        corners

let check_model ~infra ~(service : Model.Service.t) =
  List.concat_map
    (fun (tier : Model.Service.tier) ->
      List.concat_map
        (fun option -> check_tier_option ~infra ~service ~tier ~option)
        tier.options)
    service.tiers

(* --- file orchestration ---------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type scanned =
  | Unreadable of Diagnostic.t
  | Infra of Surface.infra_scan
  | Service of string * Surface.service_scan

let parse_error_diag ~file = function
  | L.Error { line; col; message } ->
      Some
        (Diagnostic.error
           ~span:{ Diagnostic.file; line; col }
           ~code:"parse-error" message)
  | _ -> None

let merge_infra (scans : Surface.infra_scan list) =
  match scans with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun (acc : Surface.infra_scan) (s : Surface.infra_scan) ->
             {
               acc with
               components = acc.components @ s.components;
               mechanisms = acc.mechanisms @ s.mechanisms;
               resources = acc.resources @ s.resources;
               element_refs =
                 List.sort_uniq String.compare
                   (acc.element_refs @ s.element_refs);
               mech_refs =
                 List.sort_uniq String.compare (acc.mech_refs @ s.mech_refs);
             })
           first rest)

let surface_errors_for file diags =
  List.exists
    (fun (d : Diagnostic.t) ->
      d.severity = Diagnostic.Error
      && match d.span with Some s -> s.file = file | None -> false)
    diags

let check_files files =
  (* Pass 1: tokenize and classify. *)
  let scanned =
    List.map
      (fun file ->
        match read_file file with
        | exception Sys_error message ->
            Unreadable (Diagnostic.error ~code:"io-error" message)
        | content -> (
            match L.tokenize content with
            | exception L.Error { line; col; message } ->
                Unreadable
                  (Diagnostic.error
                     ~span:{ Diagnostic.file; line; col }
                     ~code:"parse-error" message)
            | lines -> (
                match Surface.classify lines with
                | `Infra -> Infra (Surface.scan_infra ~file lines)
                | `Service ->
                    (* The infra scans are not known yet; re-scan below. *)
                    Service (file, Surface.scan_service ~file ~infra:None lines)
                )))
      files
  in
  let infra_scans =
    List.filter_map (function Infra s -> Some s | _ -> None) scanned
  in
  let merged_infra = merge_infra infra_scans in
  (* Pass 2: service scans see the infrastructure definitions. *)
  let scanned =
    List.map
      (function
        | Service (file, _) -> (
            let lines = L.tokenize (read_file file) in
            Service
              (file, Surface.scan_service ~file ~infra:merged_infra lines))
        | other -> other)
      scanned
  in
  let service_scans =
    List.filter_map (function Service (_, s) -> Some s | _ -> None) scanned
  in
  let surface_diags =
    List.concat_map
      (function
        | Unreadable d -> [ d ]
        | Infra s -> s.i_diags
        | Service (_, s) -> s.s_diags)
      scanned
  in
  let liveness_diags =
    match merged_infra with
    | Some infra when service_scans <> [] ->
        Surface.liveness ~infra ~services:service_scans
    | _ -> []
  in
  (* Pass 3: the real parsers and the model-level checks. A parse error
     is only reported when the surface scan saw nothing wrong in that
     file — otherwise it would duplicate the located diagnostic. *)
  let model_diags = ref [] in
  let add_model d = model_diags := d :: !model_diags in
  let infra_file =
    List.find_map
      (function Infra s -> Some s.Surface.i_file | _ -> None)
      scanned
  in
  let parsed_infra =
    Option.bind infra_file (fun file ->
        match Aved_spec.Spec.infrastructure_of_file file with
        | infra -> Some infra
        | exception (L.Error _ as e) ->
            if not (surface_errors_for file surface_diags) then
              Option.iter add_model (parse_error_diag ~file e);
            None)
  in
  List.iter
    (function
      | Service (file, _) when surface_errors_for file surface_diags ->
          (* The surface pass already found errors here; the model pass
             would re-derive them (or crash on the malformed input). *)
          ()
      | Service (file, _) -> (
          match Aved_spec.Spec.service_of_file file with
          | exception (L.Error _ as e) ->
              if not (surface_errors_for file surface_diags) then
                Option.iter add_model (parse_error_diag ~file e)
          | service -> (
              match parsed_infra with
              | None -> ()
              | Some infra -> (
                  match Model.Service.validate_against service infra with
                  | exception Invalid_argument message ->
                      if not (surface_errors_for file surface_diags) then
                        add_model
                          (Diagnostic.error
                             ~span:{ Diagnostic.file; line = 0; col = 0 }
                             ~code:"dangling-ref" message)
                  | () ->
                      List.iter
                        (fun d ->
                          add_model
                            {
                              d with
                              Diagnostic.span =
                                Some { Diagnostic.file; line = 0; col = 0 };
                            })
                        (check_model ~infra ~service))))
      | Infra _ | Unreadable _ -> ())
    scanned;
  List.sort_uniq Diagnostic.compare
    (surface_diags @ liveness_diags @ List.rev !model_diags)

(* --- whole-domain bounds (aved check --bounds) ------------------------ *)

type bounds_outcome = {
  bo_reports : Bounds.report list;
  bo_diags : Diagnostic.t list;
  bo_certificates : Certificate.t list;
}

let empty_bounds_outcome =
  { bo_reports = []; bo_diags = []; bo_certificates = [] }

let check_bounds ~infra ~(service : Model.Service.t) ~demand ~budget_fraction =
  (* Downtime budgets are an enterprise-service notion; a finite job is
     judged on completion time, which the bounds report still brackets
     through availability, but no feasibility verdict applies. *)
  let finite = Model.Service.is_finite_job service in
  let demand = if finite then None else demand in
  let budget_fraction = if finite then None else budget_fraction in
  let reports = ref [] in
  let diags = ref [] in
  let certs = ref [] in
  List.iter
    (fun (tier : Model.Service.tier) ->
      List.iter
        (fun (option : Model.Service.resource_option) ->
          let report =
            Bounds.analyze_option ~infra ~tier_name:tier.tier_name ~option
              ~demand ~budget_fraction ()
          in
          reports := report :: !reports;
          List.iter
            (fun d -> diags := d :: !diags)
            (corner_audit ~infra ~service ~tier_name:tier.tier_name ~option);
          match report.Bounds.rp_verdict with
          | Some (Bounds.Infeasible c) ->
              certs := c :: !certs;
              diags :=
                Diagnostic.errorf ~code:"infeasible-budget" "%s"
                  (Certificate.summary c)
                :: !diags
          | Some (Bounds.Trivially_satisfiable c) ->
              certs := c :: !certs;
              diags :=
                Diagnostic.infof ~code:"budget-trivial" "%s"
                  (Certificate.summary c)
                :: !diags
          | Some Bounds.Inconclusive | None -> ())
        tier.options)
    service.tiers;
  {
    bo_reports = List.rev !reports;
    bo_diags = List.rev !diags;
    bo_certificates = List.rev !certs;
  }

(* File-level driver for [--bounds]. Parse failures are skipped
   silently: [check_files] runs alongside and reports them with spans;
   re-deriving them here would duplicate every diagnostic. *)
let bounds_for_files files ~demand ~budget_fraction =
  let classify file =
    match Surface.classify (L.tokenize (read_file file)) with
    | kind -> Some kind
    | exception L.Error _ -> None
    | exception Sys_error _ -> None
  in
  let infra_file = List.find_opt (fun f -> classify f = Some `Infra) files in
  let parsed_infra =
    Option.bind infra_file (fun file ->
        match Spec.infrastructure_of_file file with
        | infra -> Some infra
        | exception L.Error _ -> None
        | exception Sys_error _ -> None)
  in
  match parsed_infra with
  | None -> empty_bounds_outcome
  | Some infra ->
      List.fold_left
        (fun acc file ->
          if classify file <> Some `Service then acc
          else
            match Spec.service_of_file file with
            | exception L.Error _ -> acc
            | exception Sys_error _ -> acc
            | service -> (
                match Model.Service.validate_against service infra with
                | exception Invalid_argument _ -> acc
                | () ->
                    let o =
                      check_bounds ~infra ~service ~demand ~budget_fraction
                    in
                    {
                      bo_reports = acc.bo_reports @ o.bo_reports;
                      bo_diags = acc.bo_diags @ o.bo_diags;
                      bo_certificates = acc.bo_certificates @ o.bo_certificates;
                    }))
        empty_bounds_outcome files

let minutes_per_year fraction = fraction *. 365. *. 24. *. 60.

let render_bounds (reports : Bounds.report list) =
  let line (r : Bounds.report) =
    match r.Bounds.rp_bounds with
    | None ->
        Printf.sprintf "%s/%s: bounds unavailable%s" r.Bounds.rp_tier
          r.Bounds.rp_resource
          (match r.Bounds.rp_note with
          | Some note -> ": " ^ note
          | None -> "")
    | Some iv ->
        let verdict =
          match r.Bounds.rp_verdict with
          | Some (Bounds.Infeasible _) -> "  [budget provably unattainable]"
          | Some (Bounds.Trivially_satisfiable _) ->
              "  [budget trivially satisfiable]"
          | Some Bounds.Inconclusive | None -> ""
        in
        Printf.sprintf "%s/%s: downtime in [%.3f, %.3f] min/yr over %s%s"
          r.Bounds.rp_tier r.Bounds.rp_resource
          (minutes_per_year (Interval.lo iv))
          (minutes_per_year (Interval.hi iv))
          r.Bounds.rp_region verdict
  in
  String.concat "\n" (List.map line reports)

let render_certificates certs =
  "[" ^ String.concat "," (List.map Certificate.to_json certs) ^ "]"

(* --- rendering ------------------------------------------------------- *)

let render_human diags = String.concat "\n" (List.map Diagnostic.to_string diags)

let render_json diags =
  "[" ^ String.concat "," (List.map Diagnostic.to_json diags) ^ "]"

(* Exit status: 0 = acceptably clean, 1 = failing. [strict] fails on
   any diagnostic; the default only on errors. *)
let exit_status ~strict diags =
  if Diagnostic.has_errors diags then 1
  else if strict && diags <> [] then 1
  else 0
