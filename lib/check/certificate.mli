(** Machine-checkable proof objects for the bounds analysis.

    A certificate pairs a conclusion with the interval facts it depends
    on. {!verify} re-checks the numeric implication from facts to
    conclusion; the [check_fact] callback lets a consumer re-ground
    every fact against concrete evaluation (the soundness tests do).
    Units: downtime and budget values are fractions of a year, rates
    are per hour, outages are seconds, costs are per-year money. *)

type fact =
  | Class_rate of { label : string; per_hour : Interval.t }
  | Class_outage of { label : string; seconds : Interval.t }
  | Downtime_bound of { design : string; fraction : Interval.t }
  | Witness_downtime of { design : string; fraction : float; cost : float }
  | Ideal_time of { design : string; hours : float }
  | Budget of { fraction : float }
  | Region of { description : string }

type conclusion =
  | Infeasible of {
      tier : string;
      resource : string;
      budget_fraction : float;
      best_case_fraction : float;
    }
  | Trivially_satisfiable of {
      tier : string;
      resource : string;
      budget_fraction : float;
      worst_case_fraction : float;
    }
  | Dominated of {
      design : string;
      witness : string;
      cost : float;
      witness_cost : float;
      downtime_lower_bound : float;
      witness_downtime : float;
    }
  | Exceeds_time_budget of {
      design : string;
      max_hours : float;
      ideal_hours : float;
      availability_upper : float;
      lower_bound_hours : float;
    }
      (** Job searches: the expected completion time is at least
          [ideal_hours / availability_upper > max_hours]. *)

type t = { conclusion : conclusion; facts : fact list }

val make : conclusion -> fact list -> t

val verify : ?check_fact:(fact -> bool) -> t -> bool
(** Whether the facts numerically imply the conclusion, and every fact
    passes [check_fact] (defaults to accepting). *)

val summary : t -> string
(** One-line human rendering of the conclusion. *)

val to_json : t -> string
(** Flat JSON object; infinite interval endpoints render as the strings
    ["inf"] / ["-inf"]. *)
