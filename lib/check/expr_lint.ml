module Expr = Aved_expr.Expr

type reporter = Diagnostic.severity -> code:string -> string -> unit

let comparison_to_string = function
  | Expr.Le -> "<="
  | Expr.Lt -> "<"
  | Expr.Ge -> ">="
  | Expr.Gt -> ">"
  | Expr.Eq -> "=="
  | Expr.Ne -> "!="

let eval_opt expr bindings =
  match Expr.eval_alist expr bindings with
  | v -> Some v
  | exception Expr.Unbound_variable _ -> None
  | exception Division_by_zero -> None

let relative_gap a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale

(* A piecewise expression is suspicious when its two branches disagree
   at the split point itself: [if n <= 30 then f else g] with
   [f(30) <> g(30)] produces a throughput jump a real system would not
   exhibit. Only comparisons pinning a single variable against a
   constant are probed; [bindings] supplies representative values for
   the remaining variables. *)
let check_split_continuity ~bindings ~(report : reporter) lhs rhs then_ else_
    =
  let pin =
    match (lhs, rhs) with
    | Expr.Var v, other | other, Expr.Var v -> (
        match Expr.const_value other with
        | Some k -> Some (v, k)
        | None -> None)
    | _ -> None
  in
  match pin with
  | None -> ()
  | Some (v, k) -> (
      let at_split = (v, k) :: List.remove_assoc v bindings in
      match (eval_opt then_ at_split, eval_opt else_ at_split) with
      | Some a, Some b when relative_gap a b > 1e-6 ->
          report Diagnostic.Warning ~code:"discontinuity"
            (Printf.sprintf
               "branches disagree at the split point %s = %g: %g vs %g" v k a
               b)
      | _ -> ())

let rec lint ~bindings ~(report : reporter) (expr : Expr.t) =
  let recurse e = lint ~bindings ~report e in
  match expr with
  | Expr.Const _ | Expr.Var _ -> ()
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) ->
      recurse a;
      recurse b
  | Expr.Div (a, b) ->
      (match Expr.const_value b with
      | Some 0. ->
          report Diagnostic.Error ~code:"div-by-zero"
            "division by a constant zero"
      | Some _ | None -> ());
      recurse a;
      recurse b
  | Expr.Neg a -> recurse a
  | Expr.Call (_, args) -> List.iter recurse args
  | Expr.If (cmp, lhs, rhs, then_, else_) ->
      (match (Expr.const_value lhs, Expr.const_value rhs) with
      | Some a, Some b ->
          let holds = Expr.compare_holds cmp a b in
          report Diagnostic.Warning ~code:"unreachable-branch"
            (Printf.sprintf
               "condition %g %s %g is always %b; the %s branch is unreachable"
               a (comparison_to_string cmp) b holds
               (if holds then "else" else "then"))
      | _ -> check_split_continuity ~bindings ~report lhs rhs then_ else_);
      recurse lhs;
      recurse rhs;
      recurse then_;
      recurse else_

(* Cap probing so huge nActive ranges stay cheap. *)
let sample_up_to limit values =
  let n = List.length values in
  if n <= limit then values
  else
    let arr = Array.of_list values in
    List.init limit (fun i -> arr.(i * (n - 1) / (limit - 1)))
    |> List.sort_uniq Int.compare

let report_drop ~(report : reporter) probe ns =
  let evaluated =
    List.filter_map
      (fun n ->
        match probe n with
        | v -> Some (n, v)
        | exception _ -> None)
      ns
  in
  let rec first_drop = function
    | (n1, v1) :: ((n2, v2) :: _ as rest) ->
        if v2 < v1 -. (1e-9 *. Float.max 1. (Float.abs v1)) then
          Some (n1, v1, n2, v2)
        else first_drop rest
    | [ _ ] | [] -> None
  in
  match first_drop evaluated with
  | Some (n1, v1, n2, v2) ->
      report Diagnostic.Warning ~code:"non-monotone"
        (Printf.sprintf
           "performance decreases with more resources: f(%d) = %g but \
            f(%d) = %g"
           n1 v1 n2 v2)
  | None -> ()

(* An expression is first attacked with the difference-quotient
   analysis: a nonnegative quotient interval over the whole [n] box
   proves monotonicity for every admissible count, not just the probed
   ones. Sampling remains as the fallback for the unproven cases — it
   also supplies the concrete witness pair the diagnostic quotes.
   Tables need no sampling cap at all: piecewise-linear functions are
   monotone iff they are monotone at their breakpoints, so probing the
   breakpoints inside the range (plus its endpoints) is exact. *)
let check_monotone_performance ~n_values ~(report : reporter)
    (perf : Aved_perf.Perf_function.t) =
  let ns = List.sort_uniq Int.compare n_values in
  match (Aved_perf.Perf_function.classify perf, ns) with
  | `Const _, _ | _, ([] | [ _ ]) -> ()
  | `Expression expr, ns ->
      let probe n = Aved_perf.Perf_function.eval perf ~n in
      let lo = List.hd ns and hi = List.nth ns (List.length ns - 1) in
      let proven_monotone =
        (* [eval] pins n = 0 to zero output regardless of the
           expression, so the interval argument only covers n >= 1. *)
        lo >= 1
        &&
        let env = function
          | "n" ->
              Some (Interval.of_bounds (float_of_int lo) (float_of_int hi))
          | _ -> None
        in
        match Abstract_expr.monotonicity ~var:"n" ~env expr with
        | Abstract_expr.Constant | Abstract_expr.Nondecreasing -> true
        | Abstract_expr.Nonincreasing | Abstract_expr.Unknown -> false
        | exception _ -> false
      in
      if not proven_monotone then report_drop ~report probe (sample_up_to 64 ns)
  | `Table points, ns ->
      let probe n = Aved_perf.Perf_function.eval perf ~n in
      let lo = List.hd ns and hi = List.nth ns (List.length ns - 1) in
      let breakpoints =
        List.filter_map
          (fun (n, _) -> if n > lo && n < hi then Some n else None)
          points
      in
      report_drop ~report probe
        (List.sort_uniq Int.compare (lo :: hi :: breakpoints))
