(** Severity-tagged, source-located diagnostics emitted by the static
    checker ([aved check]). *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type span = {
  file : string;
  line : int;  (** 1-based; 0 = whole-file / model-level. *)
  col : int;  (** 1-based; 0 = unknown. *)
}

type t = {
  severity : severity;
  code : string;  (** Stable kebab-case identifier, e.g. "dim-mismatch". *)
  span : span option;
  message : string;
}

val make : ?span:span -> severity -> code:string -> string -> t
val error : ?span:span -> code:string -> string -> t
val warning : ?span:span -> code:string -> string -> t
val info : ?span:span -> code:string -> string -> t

val errorf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val warningf :
  ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val infof : ?span:span -> code:string -> ('a, unit, string, t) format4 -> 'a

val compare : t -> t -> int
(** Report order: by file, position, severity, code. *)

val to_string : t -> string
(** [file:line:col: severity[code]: message]. *)

val to_json : t -> string
(** One JSON object; no trailing newline. *)

val count : severity -> t list -> int
val has_errors : t list -> bool
val summary : t list -> string
