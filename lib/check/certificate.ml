(* Machine-checkable proof objects for the bounds analysis.

   A certificate names the interval facts a conclusion depends on, so a
   consumer who trusts the facts can re-check the conclusion with plain
   arithmetic, and a consumer who trusts nothing can re-validate each
   fact against concrete evaluation through the [check_fact] callback
   of [verify]. Downtime values are fractions of a year; rates are per
   hour; outages are seconds; costs are per-year money as floats. *)

type fact =
  | Class_rate of { label : string; per_hour : Interval.t }
  | Class_outage of { label : string; seconds : Interval.t }
  | Downtime_bound of { design : string; fraction : Interval.t }
  | Witness_downtime of { design : string; fraction : float; cost : float }
  | Ideal_time of { design : string; hours : float }
  | Budget of { fraction : float }
  | Region of { description : string }

type conclusion =
  | Infeasible of {
      tier : string;
      resource : string;
      budget_fraction : float;
      best_case_fraction : float;
    }
  | Trivially_satisfiable of {
      tier : string;
      resource : string;
      budget_fraction : float;
      worst_case_fraction : float;
    }
  | Dominated of {
      design : string;
      witness : string;
      cost : float;
      witness_cost : float;
      downtime_lower_bound : float;
      witness_downtime : float;
    }
  | Exceeds_time_budget of {
      design : string;
      max_hours : float;
      ideal_hours : float;
      availability_upper : float;
      lower_bound_hours : float;
    }

type t = { conclusion : conclusion; facts : fact list }

let make conclusion facts = { conclusion; facts }

let downtime_bounds t =
  List.filter_map
    (function Downtime_bound { fraction; _ } -> Some fraction | _ -> None)
    t.facts

(* The numeric implication from facts to conclusion, plus one callback
   per fact for consumers who want to re-ground the facts themselves
   (the soundness tests re-evaluate each one concretely). *)
let verify ?(check_fact = fun (_ : fact) -> true) t =
  List.for_all check_fact t.facts
  &&
  match t.conclusion with
  | Infeasible { budget_fraction; best_case_fraction; _ } ->
      let bounds = downtime_bounds t in
      bounds <> []
      && List.exists
           (function Budget { fraction } -> fraction = budget_fraction | _ -> false)
           t.facts
      && List.for_all
           (fun iv -> Interval.lo iv >= best_case_fraction)
           bounds
      && best_case_fraction > budget_fraction
  | Trivially_satisfiable { budget_fraction; worst_case_fraction; _ } ->
      let bounds = downtime_bounds t in
      bounds <> []
      && List.exists
           (function Budget { fraction } -> fraction = budget_fraction | _ -> false)
           t.facts
      && List.for_all
           (fun iv -> Interval.hi iv <= worst_case_fraction)
           bounds
      && worst_case_fraction <= budget_fraction
  | Dominated
      { design; witness; cost; witness_cost; downtime_lower_bound;
        witness_downtime } ->
      List.exists
        (function
          | Witness_downtime w ->
              w.design = witness
              && w.fraction = witness_downtime
              && w.cost = witness_cost
          | _ -> false)
        t.facts
      && List.exists
           (function
             | Downtime_bound b ->
                 b.design = design && Interval.lo b.fraction >= downtime_lower_bound
             | _ -> false)
           t.facts
      && witness_cost <= cost
      && witness_downtime < downtime_lower_bound
  | Exceeds_time_budget
      { design; max_hours; ideal_hours; availability_upper; lower_bound_hours }
    ->
      (* Expected completion is at least the failure-free time divided
         by the best possible availability. *)
      List.exists
        (function
          | Ideal_time i -> i.design = design && i.hours = ideal_hours
          | _ -> false)
        t.facts
      && List.exists
           (function
             | Downtime_bound b ->
                 b.design = design
                 && availability_upper >= 1. -. Interval.lo b.fraction
             | _ -> false)
           t.facts
      && availability_upper > 0.
      && lower_bound_hours <= ideal_hours /. availability_upper
      && lower_bound_hours > max_hours

let minutes_per_year fraction = fraction *. 365. *. 24. *. 60.

let summary t =
  match t.conclusion with
  | Infeasible { tier; resource; budget_fraction; best_case_fraction } ->
      Printf.sprintf
        "%s/%s: budget %.3f min/yr is provably unattainable; best-case \
         downtime >= %.3f min/yr"
        tier resource
        (minutes_per_year budget_fraction)
        (minutes_per_year best_case_fraction)
  | Trivially_satisfiable { tier; resource; budget_fraction; worst_case_fraction }
    ->
      Printf.sprintf
        "%s/%s: budget %.3f min/yr holds over the whole region; worst-case \
         downtime <= %.3f min/yr"
        tier resource
        (minutes_per_year budget_fraction)
        (minutes_per_year worst_case_fraction)
  | Dominated { witness; downtime_lower_bound; witness_downtime; _ } ->
      Printf.sprintf
        "dominated by %s: downtime >= %.3f min/yr vs witness %.3f min/yr at \
         no lower cost"
        witness
        (minutes_per_year downtime_lower_bound)
        (minutes_per_year witness_downtime)
  | Exceeds_time_budget { max_hours; lower_bound_hours; _ } ->
      Printf.sprintf
        "completion time provably exceeds the %.2f h budget: at least %.2f h"
        max_hours lower_bound_hours

(* JSON rendering, by hand like [Diagnostic.to_json]. Infinite interval
   endpoints become the strings "inf"/"-inf" (JSON has no literal for
   them); everything else is a plain number. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if f = infinity then "\"inf\""
  else if f = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f

let json_interval iv =
  Printf.sprintf "{\"lo\":%s,\"hi\":%s}"
    (json_float (Interval.lo iv))
    (json_float (Interval.hi iv))

let fact_to_json = function
  | Class_rate { label; per_hour } ->
      Printf.sprintf
        "{\"fact\":\"class_rate\",\"class\":\"%s\",\"per_hour\":%s}"
        (escape label) (json_interval per_hour)
  | Class_outage { label; seconds } ->
      Printf.sprintf
        "{\"fact\":\"class_outage\",\"class\":\"%s\",\"seconds\":%s}"
        (escape label) (json_interval seconds)
  | Downtime_bound { design; fraction } ->
      Printf.sprintf
        "{\"fact\":\"downtime_bound\",\"design\":\"%s\",\"fraction\":%s}"
        (escape design) (json_interval fraction)
  | Witness_downtime { design; fraction; cost } ->
      Printf.sprintf
        "{\"fact\":\"witness_downtime\",\"design\":\"%s\",\"fraction\":%s,\
         \"cost\":%s}"
        (escape design) (json_float fraction) (json_float cost)
  | Ideal_time { design; hours } ->
      Printf.sprintf
        "{\"fact\":\"ideal_time\",\"design\":\"%s\",\"hours\":%s}"
        (escape design) (json_float hours)
  | Budget { fraction } ->
      Printf.sprintf "{\"fact\":\"budget\",\"fraction\":%s}"
        (json_float fraction)
  | Region { description } ->
      Printf.sprintf "{\"fact\":\"region\",\"description\":\"%s\"}"
        (escape description)

let conclusion_to_json = function
  | Infeasible { tier; resource; budget_fraction; best_case_fraction } ->
      Printf.sprintf
        "{\"kind\":\"infeasible\",\"tier\":\"%s\",\"resource\":\"%s\",\
         \"budget_fraction\":%s,\"best_case_fraction\":%s}"
        (escape tier) (escape resource)
        (json_float budget_fraction)
        (json_float best_case_fraction)
  | Trivially_satisfiable { tier; resource; budget_fraction; worst_case_fraction }
    ->
      Printf.sprintf
        "{\"kind\":\"trivially_satisfiable\",\"tier\":\"%s\",\
         \"resource\":\"%s\",\"budget_fraction\":%s,\
         \"worst_case_fraction\":%s}"
        (escape tier) (escape resource)
        (json_float budget_fraction)
        (json_float worst_case_fraction)
  | Dominated
      { design; witness; cost; witness_cost; downtime_lower_bound;
        witness_downtime } ->
      Printf.sprintf
        "{\"kind\":\"dominated\",\"design\":\"%s\",\"witness\":\"%s\",\
         \"cost\":%s,\"witness_cost\":%s,\"downtime_lower_bound\":%s,\
         \"witness_downtime\":%s}"
        (escape design) (escape witness) (json_float cost)
        (json_float witness_cost)
        (json_float downtime_lower_bound)
        (json_float witness_downtime)
  | Exceeds_time_budget
      { design; max_hours; ideal_hours; availability_upper; lower_bound_hours }
    ->
      Printf.sprintf
        "{\"kind\":\"exceeds_time_budget\",\"design\":\"%s\",\
         \"max_hours\":%s,\"ideal_hours\":%s,\"availability_upper\":%s,\
         \"lower_bound_hours\":%s}"
        (escape design) (json_float max_hours) (json_float ideal_hours)
        (json_float availability_upper)
        (json_float lower_bound_hours)

let to_json t =
  Printf.sprintf "{\"conclusion\":%s,\"facts\":[%s]}"
    (conclusion_to_json t.conclusion)
    (String.concat "," (List.map fact_to_json t.facts))
