(** Dimension inference over {!Aved_expr.Expr.t}.

    A five-point lattice: [Any] (polymorphic constants), [Scalar]
    (counts and fractions), [Duration], [Per_duration] (1/time) and
    [Money]. Unification is deliberately loose where Table 1 of the
    paper is loose — [Per_duration] unifies with [Scalar] because
    duration parameters are bound as raw minutes ([max(10/cpi, 100%)]
    is a shipped formula) — and strict where mixing is always a bug:
    [Duration] and [Money] unify only with themselves and [Any]. *)

type t = Any | Scalar | Duration | Per_duration | Money

val to_string : t -> string

val unify : t -> t -> t option
(** Meet of two dimensions for [+], [-], [min], [max], comparisons and
    branch joins; [None] means a dimension mismatch. *)

type product = Dim of t | Nonsense of string

val mul : t -> t -> product
val div : t -> t -> product
(** Product dimensions; [Nonsense] flags units with no meaning in this
    domain (time squared, money in a denominator, money x time). *)

type reporter = Diagnostic.severity -> string -> unit

val infer : env:(string -> t option) -> report:reporter -> Aved_expr.Expr.t -> t
(** Infers the dimension of an expression, calling [report] for every
    mismatch (Error) and nonsensical product (Warning). Unknown
    variables are [Any] — the free-variable check reports them
    separately. *)
