module Duration = Aved_units.Duration
module Model = Aved_model
module Tier_model = Aved_avail.Tier_model

(* Whole-domain downtime bounds for one (tier, resource option).

   The concrete pipeline evaluates one design at a time: fixed
   mechanism settings give fixed failure classes
   ([Tier_model.classes_of]) and [Avail.Analytic] turns them into a
   downtime fraction for one (n_active, n_min, n_spare). Here the
   mechanism settings are left free: each class's repair time becomes an
   interval hulled over every setting of its repair mechanism (failure
   rates and failover times do not depend on settings), and the analytic
   formula is replayed in outward-rounded interval arithmetic. The
   result brackets the downtime of EVERY design with those counts across
   the whole mechanism-settings grid — one interval solve standing in
   for the full settings fan-out.

   Soundness of the replay: the stationary weights of the birth-death
   chain are rho_k = c_k * x^k with exact nonnegative coefficients
   c_k = prod a_j / (j + 1) and x = lambda * mean repair; interval
   powers of a nonnegative x are exact ranges, and the final ratios
   D / (D + U) and N / (D + U) are monotone in each part, so the
   decorrelated corners [D.lo/(D.lo + U.hi), D.hi/(D.hi + U.lo)] bound
   them. Everything else is a sum or product of interval terms, each
   containing its concrete counterpart pointwise.

   Out of scope, by construction: spare-active modes other than
   all-inactive (they change the failover structure — callers must not
   consult an analyzer when exploring spare modes), and repair
   mechanisms that lack an mttr for some setting (the concrete build
   would raise there; [analyzer] returns [None]). *)

type class_interval = {
  ci_label : string;
  ci_rate : float; (* failures per second; settings-independent *)
  ci_mttr : Interval.t; (* seconds, hulled over the settings grid *)
  ci_failover : float; (* seconds; settings-independent *)
}

type analyzer = {
  an_tier : string;
  an_resource : string;
  an_scope : Model.Service.failure_scope;
  an_classes : class_interval list;
  an_memo : (int * int * int, Interval.t) Hashtbl.t;
  an_lock : Mutex.t; (* the search consults one analyzer from pool workers *)
}

let tier_name an = an.an_tier
let resource_name an = an.an_resource

(* Hull of a repair mechanism's mttr over its whole settings grid;
   [None] when any setting yields no mttr (the concrete build would
   raise "provides no mttr" there). *)
let mechanism_mttr_interval mech =
  let rec loop acc = function
    | [] -> acc
    | setting :: rest -> (
        match (acc, Model.Mechanism.mttr_of mech setting) with
        | _, None -> None
        | None, Some d -> loop (Some (Interval.point (Duration.seconds d))) rest
        | Some iv, Some d ->
            loop
              (Some (Interval.hull iv (Interval.point (Duration.seconds d))))
              rest)
  in
  loop None (Model.Mechanism.settings mech)

let repair_interval ~infra ~resource_mechanisms
    (fm : Model.Component.failure_mode) =
  match fm.repair with
  | Model.Component.Fixed_repair d -> Some (Interval.point (Duration.seconds d))
  | Model.Component.Repair_by_mechanism mech_name ->
      if
        not
          (List.exists
             (fun (m : Model.Mechanism.t) -> String.equal m.name mech_name)
             resource_mechanisms)
      then None (* no setting in scope: the concrete build would raise *)
      else
        mechanism_mttr_interval
          (Model.Infrastructure.mechanism_exn infra mech_name)

(* Mirrors [Tier_model.classes_of] with [spare_active = []] (every
   component's startup is on the failover path) and the repair time
   hulled over settings. *)
let analyzer ~infra ~tier_name ~(option : Model.Service.resource_option) =
  match Model.Infrastructure.find_resource infra option.resource with
  | None -> None
  | Some resource -> (
      let resource_mechanisms =
        Model.Infrastructure.resource_mechanisms infra resource
      in
      let failover_base =
        Duration.add resource.reconfig_time
          (Model.Resource.startup_time_of resource
             (Model.Resource.component_names resource))
      in
      let classes =
        List.concat_map
          (fun (element : Model.Resource.element) ->
            let c =
              Model.Infrastructure.component_exn infra element.component
            in
            List.map
              (fun (fm : Model.Component.failure_mode) ->
                match repair_interval ~infra ~resource_mechanisms fm with
                | None -> None
                | Some repair ->
                    let restart =
                      Model.Resource.restart_time resource element.component
                    in
                    let fixed =
                      Duration.seconds (Duration.add fm.detect_time restart)
                    in
                    Some
                      {
                        ci_label = element.component ^ "/" ^ fm.mode_name;
                        ci_rate = 1. /. Duration.seconds fm.mtbf;
                        ci_mttr = Interval.add (Interval.point fixed) repair;
                        ci_failover =
                          Duration.seconds
                            (Duration.add fm.detect_time failover_base);
                      })
              c.failure_modes)
          resource.elements
      in
      if List.exists Option.is_none classes then None
      else
        Some
          {
            an_tier = tier_name;
            an_resource = option.resource;
            an_scope = option.failure_scope;
            an_classes = List.filter_map Fun.id classes;
            an_memo = Hashtbl.create 32;
            an_lock = Mutex.create ();
          })

(* Per-event transient outage: with spares the concrete model serves the
   failover time whenever it beats repair, i.e. min(mttr, failover);
   without spares the repair itself is the outage. (The concrete rule is
   "failover considered iff mttr > failover", whose outage equals the
   min in either case.) *)
let outage_interval ~spares c =
  if spares then Interval.min_ c.ci_mttr (Interval.point c.ci_failover)
  else c.ci_mttr

let zero = Interval.point 0.
let one = Interval.point 1.

(* [num / (num + rest)] for nonnegative parts, outward-rounded at the
   monotone corners: increasing in [num], decreasing in [rest]. *)
let share_interval num rest =
  let corner n r =
    Interval.div (Interval.point n)
      (Interval.add (Interval.point n) (Interval.point r))
  in
  Interval.of_bounds
    (Interval.lo (corner (Interval.lo num) (Interval.hi rest)))
    (Interval.hi (corner (Interval.hi num) (Interval.lo rest)))

(* Interval replay of [Avail.Analytic.downtime_fraction]. *)
let compute_downtime an ~n_active ~n_min ~n_spare =
  let classes = an.an_classes in
  if classes = [] then zero
  else
    let spares = n_spare > 0 in
    let lambda =
      List.fold_left
        (fun acc c -> Interval.add acc (Interval.point c.ci_rate))
        zero classes
    in
    let weighted_mttr =
      List.fold_left
        (fun acc c ->
          Interval.add acc (Interval.mul (Interval.point c.ci_rate) c.ci_mttr))
        zero classes
    in
    if Interval.lo lambda <= 0. || Interval.lo weighted_mttr <= 0. then
      (* Part of the settings grid degenerates the chain (no failures or
         instantaneous repair); give up soundly rather than split. *)
      Interval.of_bounds 0. 1.
    else
      let repair = Interval.div weighted_mttr lambda in
      let x = Interval.mul lambda repair in
      let n_total = n_active + n_spare in
      let actives k = Stdlib.min n_active (n_total - k) in
      let rho = Array.make (n_total + 1) one in
      for k = 1 to n_total do
        rho.(k) <-
          Interval.mul
            rho.(k - 1)
            (Interval.mul
               (Interval.point
                  (float_of_int (actives (k - 1)) /. float_of_int k))
               x)
      done;
      let down = ref zero and up = ref zero in
      for k = 0 to n_total do
        if n_total - k < n_min then down := Interval.add !down rho.(k)
        else up := Interval.add !up rho.(k)
      done;
      let chain_down = share_interval !down !up in
      let weight_num = ref zero in
      for k = 0 to n_total - 1 do
        let a = actives k in
        let next_up = n_total - k - 1 >= n_min in
        let interrupts =
          match an.an_scope with
          | Model.Service.Tier_scope -> true
          | Model.Service.Resource_scope -> a = n_min
        in
        if a > 0 && next_up && interrupts then
          weight_num :=
            Interval.add !weight_num
              (Interval.mul rho.(k) (Interval.point (float_of_int a)))
      done;
      let rest = Interval.sub (Interval.add !down !up) !weight_num in
      let weight = share_interval !weight_num rest in
      let outage_rate_sum =
        List.fold_left
          (fun acc c ->
            Interval.add acc
              (Interval.mul
                 (Interval.point c.ci_rate)
                 (outage_interval ~spares c)))
          zero classes
      in
      Interval.clamp ~lo:0. ~hi:1.
        (Interval.min_ one
           (Interval.add chain_down (Interval.mul weight outage_rate_sum)))

let downtime_interval an ~n_active ~n_min ~n_spare =
  let key = (n_active, n_min, n_spare) in
  Mutex.lock an.an_lock;
  let cached = Hashtbl.find_opt an.an_memo key in
  Mutex.unlock an.an_lock;
  match cached with
  | Some iv -> iv
  | None ->
      let iv = compute_downtime an ~n_active ~n_min ~n_spare in
      Mutex.lock an.an_lock;
      if not (Hashtbl.mem an.an_memo key) then Hashtbl.add an.an_memo key iv;
      Mutex.unlock an.an_lock;
      iv

let design_label ~n_active ~n_min ~n_spare =
  Printf.sprintf "n=%d m=%d s=%d" n_active n_min n_spare

let seconds_per_hour = 3600.

let class_facts an ~spares =
  List.concat_map
    (fun c ->
      [
        Certificate.Class_rate
          {
            label = c.ci_label;
            per_hour = Interval.point (c.ci_rate *. seconds_per_hour);
          };
        Certificate.Class_outage
          { label = c.ci_label; seconds = outage_interval ~spares c };
      ])
    an.an_classes

(* Mechanism settings at the mttr corners, for the well-formedness
   corner audit: per mechanism independently, the setting minimizing
   (resp. maximizing) its mttr; mechanisms without an mttr keep their
   first setting in both corners. *)
let mttr_corner_settings ~infra ~resource =
  let corner better mech =
    let name = (mech : Model.Mechanism.t).name in
    let best =
      List.fold_left
        (fun acc setting ->
          match Model.Mechanism.mttr_of mech setting with
          | None -> acc
          | Some d -> (
              let s = Duration.seconds d in
              match acc with
              | Some (_, s') when not (better s s') -> acc
              | _ -> Some (setting, s)))
        None
        (Model.Mechanism.settings mech)
    in
    match best with
    | Some (setting, _) -> (name, setting)
    | None -> (name, Model.Mechanism.first_setting mech)
  in
  let mechs = Model.Infrastructure.resource_mechanisms infra resource in
  ( List.map (corner (fun a b -> a < b)) mechs,
    List.map (corner (fun a b -> a > b)) mechs )

(* --- Region analysis for `aved check --bounds` ------------------- *)

type verdict =
  | Infeasible of Certificate.t
  | Trivially_satisfiable of Certificate.t
  | Inconclusive

type report = {
  rp_tier : string;
  rp_resource : string;
  rp_bounds : Interval.t option; (* hull over the region; None: unanalyzable *)
  rp_region : string;
  rp_note : string option; (* why unanalyzable, when [rp_bounds = None] *)
  rp_verdict : verdict option; (* None without a budget or bounds *)
}

let unanalyzable ~tier_name ~(option : Model.Service.resource_option) note =
  {
    rp_tier = tier_name;
    rp_resource = option.resource;
    rp_bounds = None;
    rp_region = "";
    rp_note = Some note;
    rp_verdict = None;
  }

let settings_grid ~infra ~resource =
  let mechs = Model.Infrastructure.resource_mechanisms infra resource in
  List.fold_left
    (fun acc (mech : Model.Mechanism.t) ->
      List.concat_map
        (fun partial ->
          List.map
            (fun s -> partial @ [ (mech.name, s) ])
            (Model.Mechanism.settings mech))
        acc)
    [ [] ] mechs

let max_grid = 4096

(* Smallest k >= 1 with effective performance >= demand under settings,
   scanning up to [limit]; mirrors the dynamic-sizing scan of
   [Tier_model.build]. *)
let dynamic_minimum ~option ~settings ~demand ~limit =
  let rec scan k =
    if k > limit then None
    else if Tier_model.effective_performance_of ~option ~settings ~n:k >= demand
    then Some k
    else scan (k + 1)
  in
  scan 1

(* The (n, n_min, n_spare) triples the design search can evaluate for
   this option, conservatively over-approximated, plus a printable
   description. The search enumerates totals from the option minimum up
   to minimum + max_extra + max_spares, so every candidate satisfies
   n_lo <= n <= n_lo + max_extra + max_spares and 0 <= s <= max_spares;
   n_min is n itself under static sizing or tier scope, otherwise the
   dynamic minimum for the demand under some settings. A superset of the
   reachable triples keeps both verdicts sound: infeasibility lowers its
   claimed best case, trivial satisfiability raises its worst case. *)
let region_triples ~infra ~tier_name ~(option : Model.Service.resource_option)
    ~demand ~max_extra ~max_spares =
  let range = Model.Int_range.to_list option.n_active in
  let grid_or_small =
    match Model.Infrastructure.find_resource infra option.resource with
    | None -> Error "unknown resource"
    | Some resource ->
        let grid = settings_grid ~infra ~resource in
        if List.length grid > max_grid then
          Error "mechanism-settings grid too large to enumerate"
        else Ok grid
  in
  match grid_or_small with
  | Error e -> Error e
  | Ok grid -> (
      let static_min =
        match option.sizing with
        | Model.Service.Static -> true
        | Model.Service.Dynamic -> (
            match option.failure_scope with
            | Model.Service.Tier_scope -> true
            | Model.Service.Resource_scope -> false)
      in
      match (demand, static_min) with
      | None, false ->
          Error
            "dynamically sized with resource failure scope: needs a \
             throughput requirement (--load)"
      | _ -> (
          let n_hi_cap = List.fold_left Stdlib.max 0 range in
          let admissible =
            match demand with
            | None -> range
            | Some demand ->
                (* n must make the option deliverable under at least one
                   settings assignment — the search's minimum_actives
                   gate, hulled over settings. *)
                let minima =
                  List.filter_map
                    (fun settings ->
                      Tier_model.minimum_actives ~option ~settings ~demand)
                    grid
                in
                let n_lo = List.fold_left Stdlib.min max_int minima in
                if minima = [] then []
                else
                  List.filter
                    (fun n ->
                      n >= n_lo && n <= n_lo + max_extra + max_spares)
                    range
          in
          if admissible = [] then Error "cannot deliver the demand at any size"
          else
            let minima_set =
              if static_min then []
              else
                match demand with
                | None -> assert false (* excluded above *)
                | Some demand ->
                    List.filter_map
                      (fun settings ->
                        dynamic_minimum ~option ~settings ~demand
                          ~limit:n_hi_cap)
                      grid
                    |> List.sort_uniq Stdlib.compare
            in
            let triples =
              List.concat_map
                (fun n ->
                  List.concat_map
                    (fun s ->
                      if static_min then [ (n, n, s) ]
                      else
                        List.filter_map
                          (fun m -> if m <= n then Some (n, m, s) else None)
                          minima_set)
                    (List.init (max_spares + 1) Fun.id))
                admissible
            in
            if triples = [] then
              Error "cannot deliver the demand at any size"
            else
              let n_lo = List.fold_left Stdlib.min max_int admissible in
              let n_hi = List.fold_left Stdlib.max 0 admissible in
              let description =
                Printf.sprintf
                  "%s/%s: n in [%d,%d] within range %s, spares 0..%d, n_min %s"
                  tier_name option.resource n_lo n_hi
                  (Model.Int_range.to_string option.n_active)
                  max_spares
                  (if static_min then "= n"
                   else
                     "in {"
                     ^ String.concat ","
                         (List.map string_of_int
                            (List.sort_uniq Stdlib.compare
                               (List.map (fun (_, m, _) -> m) triples)))
                     ^ "}")
              in
              Ok (triples, description)))

let analyze_option ~infra ~tier_name ~(option : Model.Service.resource_option)
    ~demand ~budget_fraction ?(max_extra = 8) ?(max_spares = 3) () =
  match analyzer ~infra ~tier_name ~option with
  | None ->
      unanalyzable ~tier_name ~option
        "outside the analyzable fragment (a repair mechanism provides no \
         mttr, or the resource is unknown)"
  | Some an -> (
      match
        region_triples ~infra ~tier_name ~option ~demand ~max_extra ~max_spares
      with
      | Error note -> unanalyzable ~tier_name ~option note
      | Ok (triples, description) ->
          let bounds =
            List.map
              (fun (n, m, s) ->
                ((n, m, s), downtime_interval an ~n_active:n ~n_min:m ~n_spare:s))
              triples
          in
          let best_design, best =
            List.fold_left
              (fun ((_, b) as acc) (d, iv) ->
                if Interval.lo iv < b then (d, Interval.lo iv) else acc)
              (fst (List.hd bounds), infinity)
              bounds
          in
          let worst_design, worst =
            List.fold_left
              (fun ((_, b) as acc) (d, iv) ->
                if Interval.hi iv > b then (d, Interval.hi iv) else acc)
              (fst (List.hd bounds), neg_infinity)
              bounds
          in
          let hull =
            List.fold_left
              (fun acc (_, iv) -> Interval.hull acc iv)
              (snd (List.hd bounds))
              bounds
          in
          let verdict =
            match budget_fraction with
            | None -> None
            | Some budget ->
                let bound_fact (n, m, s) =
                  Certificate.Downtime_bound
                    {
                      design = design_label ~n_active:n ~n_min:m ~n_spare:s;
                      fraction =
                        (let (n', m', s') = (n, m, s) in
                         downtime_interval an ~n_active:n' ~n_min:m'
                           ~n_spare:s');
                    }
                in
                let base_facts corner_design =
                  Certificate.Region { description }
                  :: Certificate.Budget { fraction = budget }
                  :: bound_fact corner_design
                  :: class_facts an
                       ~spares:(match corner_design with _, _, s -> s > 0)
                in
                if best > budget then
                  Some
                    (Infeasible
                       (Certificate.make
                          (Certificate.Infeasible
                             {
                               tier = tier_name;
                               resource = option.resource;
                               budget_fraction = budget;
                               best_case_fraction = best;
                             })
                          (base_facts best_design)))
                else if worst <= budget then
                  Some
                    (Trivially_satisfiable
                       (Certificate.make
                          (Certificate.Trivially_satisfiable
                             {
                               tier = tier_name;
                               resource = option.resource;
                               budget_fraction = budget;
                               worst_case_fraction = worst;
                             })
                          (base_facts worst_design)))
                else Some Inconclusive
          in
          {
            rp_tier = tier_name;
            rp_resource = option.resource;
            rp_bounds = Some hull;
            rp_region = description;
            rp_note = None;
            rp_verdict = verdict;
          })
