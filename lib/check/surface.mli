(** Token-level scan of spec files, before the real parsers run.

    Mirrors the parsers' block structure over the raw
    {!Aved_spec.Line_lexer} stream, so every definition, reference and
    embedded expression gets a precise [file:line:col] span — and keeps
    scanning where a parser would stop at the first error. *)

type def = { name : string; span : Diagnostic.span }

type param_info =
  | Enum_param of string list
  | Duration_param of { lo_min : float; hi_min : float }
      (** Bounds in minutes — the binding convention of
          [Mech_impact.eval]. *)

type mech_info = { m_def : def; m_params : (string * param_info) list }

type infra_scan = {
  i_file : string;
  i_diags : Diagnostic.t list;
  components : def list;
  mechanisms : mech_info list;
  resources : def list;
  element_refs : string list;  (** Components placed in some resource. *)
  mech_refs : string list;  (** Mechanisms referenced by components. *)
}

type service_scan = {
  s_file : string;
  s_diags : Diagnostic.t list;
  resource_refs : (string * Diagnostic.span) list;
  service_mech_refs : (string * Diagnostic.span) list;
}

val classify : Aved_spec.Line_lexer.line list -> [ `Infra | `Service ]
(** A file with an [application] line is a service spec. *)

val scan_infra : file:string -> Aved_spec.Line_lexer.line list -> infra_scan
(** Duplicate names, dangling mechanism/element/dependency references,
    and unused components. *)

val scan_service :
  file:string ->
  infra:infra_scan option ->
  Aved_spec.Line_lexer.line list ->
  service_scan
(** Duplicate tiers/options, dangling resource and mechanism references
    (when an infrastructure scan is supplied), free variables, dimension
    inference and expression lints over [performance]/[mperformance],
    bad [nActive] ranges, guard validation, and performance monotonicity
    probing. *)

val liveness :
  infra:infra_scan -> services:service_scan list -> Diagnostic.t list
(** Unused resources and mechanisms. Empty when [services] is empty —
    without the services, usage cannot be decided. *)
