type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type span = { file : string; line : int; col : int }

type t = { severity : severity; code : string; span : span option; message : string }

let make ?span severity ~code message = { severity; code; span; message }

let error ?span ~code message = make ?span Error ~code message
let warning ?span ~code message = make ?span Warning ~code message
let info ?span ~code message = make ?span Info ~code message

let errorf ?span ~code fmt = Printf.ksprintf (error ?span ~code) fmt
let warningf ?span ~code fmt = Printf.ksprintf (warning ?span ~code) fmt
let infof ?span ~code fmt = Printf.ksprintf (info ?span ~code) fmt

let compare a b =
  (* File, then position, then severity, then code: stable report order. *)
  let span_key = function
    | None -> ("", max_int, max_int)
    | Some { file; line; col } -> (file, line, col)
  in
  let c = Stdlib.compare (span_key a.span) (span_key b.span) in
  if c <> 0 then c
  else
    let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c else String.compare a.message b.message

let span_to_string { file; line; col } =
  if line = 0 then file
  else if col = 0 then Printf.sprintf "%s:%d" file line
  else Printf.sprintf "%s:%d:%d" file line col

let to_string t =
  let prefix =
    match t.span with None -> "" | Some s -> span_to_string s ^ ": "
  in
  Printf.sprintf "%s%s[%s]: %s" prefix
    (severity_to_string t.severity)
    t.code t.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let span_fields =
    match t.span with
    | None -> ""
    | Some { file; line; col } ->
        Printf.sprintf "\"file\":\"%s\",\"line\":%d,\"col\":%d,"
          (json_escape file) line col
  in
  Printf.sprintf "{%s\"severity\":\"%s\",\"code\":\"%s\",\"message\":\"%s\"}"
    span_fields
    (severity_to_string t.severity)
    (json_escape t.code) (json_escape t.message)

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let summary diags =
  Printf.sprintf "%d error(s), %d warning(s), %d note(s)" (count Error diags)
    (count Warning diags) (count Info diags)
