(* Token-level scan of spec files. Works on the raw Line_lexer stream,
   before (and regardless of whether) the real parsers accept the file,
   so every name and expression gets a precise file:line:col span. The
   scan mirrors the parsers' block structure but never raises: problems
   become diagnostics. *)

module L = Aved_spec.Line_lexer
module Expr = Aved_expr.Expr
module Duration = Aved_units.Duration
module Perf_function = Aved_perf.Perf_function
module Slowdown = Aved_perf.Slowdown
module Int_range = Aved_model.Int_range

type def = { name : string; span : Diagnostic.span }

type param_info =
  | Enum_param of string list
  | Duration_param of { lo_min : float; hi_min : float }

type mech_info = { m_def : def; m_params : (string * param_info) list }

type infra_scan = {
  i_file : string;
  i_diags : Diagnostic.t list;
  components : def list;
  mechanisms : mech_info list;
  resources : def list;
  element_refs : string list;  (** Components placed in some resource. *)
  mech_refs : string list;  (** Mechanisms referenced by components. *)
}

type service_scan = {
  s_file : string;
  s_diags : Diagnostic.t list;
  resource_refs : (string * Diagnostic.span) list;
  service_mech_refs : (string * Diagnostic.span) list;
}

let classify lines =
  if List.exists (fun l -> L.leading_key l = "application") lines then `Service
  else `Infra

let span file (line : L.line) (attr : L.attr) =
  { Diagnostic.file; line = line.lineno; col = attr.value_col }

let find_def defs name = List.find_opt (fun d -> String.equal d.name name) defs

let duplicate_diag ~what ~first (d : def) =
  Diagnostic.errorf ~span:d.span ~code:"duplicate-name"
    "%s %s is already defined at line %d" what d.name first.Diagnostic.line

(* The value of the leading attribute names the block; missing values
   are the parser's problem. *)
let leading_def file (line : L.line) =
  match line.attrs with
  | attr :: _ when attr.value <> "" ->
      Some { name = attr.value; span = span file line attr }
  | _ -> None

let mechanism_ref_of (attr : L.attr) =
  let v = attr.value in
  let n = String.length v in
  if n >= 3 && v.[0] = '<' && v.[n - 1] = '>' then Some (String.sub v 1 (n - 2))
  else None

(* --- infrastructure -------------------------------------------------- *)

type infra_ctx =
  | I_top
  | I_component
  | I_mechanism of (string * param_info) list ref
  | I_resource of resource_acc

and resource_acc = {
  r_def : def;
  mutable r_elements : string list;
  mutable r_depends : (string * Diagnostic.span) list;
}

let parse_param_info range_text =
  if String.contains range_text ';' then
    let minutes d = Duration.seconds d /. 60. in
    let body =
      let n = String.length range_text in
      if n >= 2 && range_text.[0] = '[' && range_text.[n - 1] = ']' then
        String.sub range_text 1 (n - 2)
      else range_text
    in
    match String.split_on_char ';' body with
    | bounds :: _ -> (
        match String.index_opt bounds '-' with
        | Some i -> (
            let lo = String.trim (String.sub bounds 0 i) in
            let hi =
              String.trim
                (String.sub bounds (i + 1) (String.length bounds - i - 1))
            in
            match (Duration.of_string_opt lo, Duration.of_string_opt hi) with
            | Some lo, Some hi ->
                Duration_param { lo_min = minutes lo; hi_min = minutes hi }
            | _ -> Duration_param { lo_min = 1.; hi_min = 1440. })
        | None -> Duration_param { lo_min = 1.; hi_min = 1440. })
    | [] -> Duration_param { lo_min = 1.; hi_min = 1440. }
  else
    let n = String.length range_text in
    let body =
      if n >= 2 && range_text.[0] = '[' && range_text.[n - 1] = ']' then
        String.sub range_text 1 (n - 2)
      else range_text
    in
    Enum_param
      (String.split_on_char ',' body
      |> List.concat_map (String.split_on_char ' ')
      |> List.map String.trim
      |> List.filter (fun s -> s <> ""))

let scan_infra ~file lines =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let components = ref [] and mechanisms = ref [] and resources = ref [] in
  let element_refs = ref [] and mech_refs = ref [] in
  let failure_modes = ref [] (* of the current component *) in
  let ctx = ref I_top in
  let close_resource () =
    match !ctx with
    | I_resource acc ->
        List.iter
          (fun (dep, dspan) ->
            if not (List.mem dep acc.r_elements) then
              add
                (Diagnostic.errorf ~span:dspan ~code:"dangling-ref"
                   "dependency %s is not an element of resource %s" dep
                   acc.r_def.name))
          acc.r_depends
    | I_top | I_component | I_mechanism _ -> ()
  in
  let collect_component_mech_refs (line : L.line) =
    List.iter
      (fun (attr : L.attr) ->
        match attr.key with
        | "mttr" | "loss_window" -> (
            match mechanism_ref_of attr with
            | Some m -> mech_refs := (m, span file line attr) :: !mech_refs
            | None -> ())
        | _ -> ())
      line.attrs
  in
  List.iter
    (fun (line : L.line) ->
      match L.leading_key line with
      | "component" -> (
          match (!ctx, leading_def file line) with
          | I_resource acc, Some d ->
              acc.r_elements <- d.name :: acc.r_elements;
              element_refs := (d.name, d.span) :: !element_refs;
              List.iter
                (fun (attr : L.attr) ->
                  if attr.key = "depend" && attr.value <> "null" then
                    acc.r_depends <-
                      (attr.value, span file line attr) :: acc.r_depends)
                line.attrs
          | _, Some d ->
              close_resource ();
              (match find_def !components d.name with
              | Some first ->
                  add (duplicate_diag ~what:"component" ~first:first.span d)
              | None -> components := d :: !components);
              failure_modes := [];
              collect_component_mech_refs line;
              ctx := I_component
          | _, None -> ())
      | "failure" -> (
          match (!ctx, leading_def file line) with
          | I_component, Some d ->
              (match find_def !failure_modes d.name with
              | Some first ->
                  add (duplicate_diag ~what:"failure mode" ~first:first.span d)
              | None -> failure_modes := d :: !failure_modes);
              collect_component_mech_refs line
          | _ -> ())
      | "mechanism" -> (
          close_resource ();
          match leading_def file line with
          | Some d ->
              let params = ref [] in
              (match
                 List.find_opt
                   (fun (m : mech_info) -> String.equal m.m_def.name d.name)
                   !mechanisms
               with
              | Some first ->
                  add (duplicate_diag ~what:"mechanism" ~first:first.m_def.span d)
              | None ->
                  mechanisms := { m_def = d; m_params = [] } :: !mechanisms);
              ctx := I_mechanism params
          | None -> ())
      | "param" -> (
          match (!ctx, leading_def file line) with
          | I_mechanism params, Some d ->
              let info =
                match L.find_value line "range" with
                | Some text -> parse_param_info text
                | None -> Enum_param []
              in
              params := (d.name, info) :: !params;
              (* Attach to the mechanism being built. *)
              (match !mechanisms with
              | m :: rest ->
                  mechanisms :=
                    { m with m_params = List.rev !params } :: rest
              | [] -> ())
          | _ -> ())
      | "resource" -> (
          close_resource ();
          match leading_def file line with
          | Some d ->
              (match find_def !resources d.name with
              | Some first ->
                  add (duplicate_diag ~what:"resource" ~first:first.span d)
              | None -> resources := d :: !resources);
              ctx := I_resource { r_def = d; r_elements = []; r_depends = [] }
          | None -> ())
      | _ -> ())
    lines;
  close_resource ();
  let components = List.rev !components in
  let mechanisms = List.rev !mechanisms in
  let resources = List.rev !resources in
  (* Dangling mechanism references, with the reference site's span. *)
  List.iter
    (fun (m, mspan) ->
      if
        not
          (List.exists
             (fun (mi : mech_info) -> String.equal mi.m_def.name m)
             mechanisms)
      then
        add
          (Diagnostic.errorf ~span:mspan ~code:"dangling-ref"
             "mechanism <%s> is not defined" m))
    !mech_refs;
  (* Dangling element references, at the reference site. *)
  let known c = List.exists (fun (d : def) -> String.equal d.name c) components in
  List.iter
    (fun (c, csp) ->
      if not (known c) then
        add
          (Diagnostic.errorf ~span:csp ~code:"dangling-ref"
             "resource element %s is not a component" c))
    (List.rev !element_refs);
  (* Components never placed in a resource are dead weight. *)
  List.iter
    (fun (d : def) ->
      if not (List.mem_assoc d.name !element_refs) then
        add
          (Diagnostic.warningf ~span:d.span ~code:"unused-def"
             "component %s is not an element of any resource" d.name))
    components;
  {
    i_file = file;
    i_diags = List.rev !diags;
    components;
    mechanisms;
    resources;
    element_refs = List.sort_uniq String.compare (List.map fst !element_refs);
    mech_refs = List.sort_uniq String.compare (List.map fst !mech_refs);
  }

(* --- service --------------------------------------------------------- *)

type option_acc = {
  o_resource : def;
  mutable o_n_active : Int_range.t option;
  mutable o_performance : (Perf_function.t * Diagnostic.span) option;
  mutable o_mech : (string * mech_info option) option;
      (** Current mechanism line: name and, when an infrastructure is
          available, its declaration. *)
}

let probe_bindings ?(n = 1.) (mech : mech_info option) =
  let params =
    match mech with
    | None -> []
    | Some m ->
        List.filter_map
          (fun (name, info) ->
            match info with
            | Duration_param { lo_min; hi_min } ->
                Some (name, Float.sqrt (Float.max 1e-9 (lo_min *. hi_min)))
            | Enum_param _ -> None)
          m.m_params
  in
  ("n", n) :: params

let dim_env (mech : mech_info option) v =
  if String.equal v "n" then Some Dim.Scalar
  else
    match mech with
    | None -> None
    | Some m -> (
        match List.assoc_opt v m.m_params with
        | Some (Duration_param _) -> Some Dim.Duration
        | Some (Enum_param _) | None -> None)

let scan_service ~file ~(infra : infra_scan option) lines =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let tiers = ref [] in
  let resource_refs = ref [] and service_mech_refs = ref [] in
  let tier_options = ref [] (* resource defs of the current tier *) in
  let current : option_acc option ref = ref None in
  let expr_reporter sp severity ~code message =
    add (Diagnostic.make ~span:sp severity ~code message)
  in
  let dim_reporter sp severity message =
    add (Diagnostic.make ~span:sp severity ~code:"dim-mismatch" message)
  in
  let close_option () =
    match !current with
    | None -> ()
    | Some acc ->
        (match (acc.o_performance, acc.o_n_active) with
        | Some (perf, psp), Some range ->
            Expr_lint.check_monotone_performance
              ~n_values:(Int_range.to_list range)
              ~report:(expr_reporter psp) perf
        | _ -> ());
        current := None
  in
  let check_expression ~sp ~mech ~vocabulary expr =
    (* Free variables against the declared environment. *)
    List.iter
      (fun v ->
        if not (List.mem v vocabulary) then
          add
            (Diagnostic.errorf ~span:sp ~code:"free-var"
               "unknown variable %s (expected one of: %s)" v
               (String.concat ", " vocabulary)))
      (Expr.variables expr);
    ignore (Dim.infer ~env:(dim_env mech) ~report:(dim_reporter sp) expr);
    Expr_lint.lint
      ~bindings:(probe_bindings mech)
      ~report:(fun severity ~code message ->
        add (Diagnostic.make ~span:sp severity ~code message))
      expr
  in
  List.iter
    (fun (line : L.line) ->
      (match L.leading_key line with
      | "application" -> ()
      | "tier" -> (
          close_option ();
          tier_options := [];
          match leading_def file line with
          | Some d ->
              (match find_def !tiers d.name with
              | Some first -> add (duplicate_diag ~what:"tier" ~first:first.span d)
              | None -> tiers := d :: !tiers)
          | None -> ())
      | "resource" -> (
          close_option ();
          match leading_def file line with
          | Some d ->
              (match find_def !tier_options d.name with
              | Some first ->
                  add
                    (Diagnostic.errorf ~span:d.span ~code:"duplicate-name"
                       "resource option %s is already listed in this tier at \
                        line %d"
                       d.name first.span.Diagnostic.line)
              | None -> tier_options := d :: !tier_options);
              resource_refs := (d.name, d.span) :: !resource_refs;
              (match infra with
              | Some i
                when not
                       (List.exists
                          (fun (r : def) -> String.equal r.name d.name)
                          i.resources) ->
                  add
                    (Diagnostic.errorf ~span:d.span ~code:"dangling-ref"
                       "resource %s is not defined in the infrastructure"
                       d.name)
              | _ -> ());
              current :=
                Some
                  {
                    o_resource = d;
                    o_n_active = None;
                    o_performance = None;
                    o_mech = None;
                  }
          | None -> ())
      | _ -> ());
      (* Option-level attributes can share a line with [resource=]. *)
      List.iter
        (fun (attr : L.attr) ->
          let sp = span file line attr in
          match (attr.key, !current) with
          | "nActive", Some acc -> (
              match Int_range.of_string attr.value with
              | range -> acc.o_n_active <- Some range
              | exception Invalid_argument message ->
                  add
                    (Diagnostic.errorf ~span:sp ~code:"bad-range" "%s" message))
          | "performance", Some acc -> (
              match Perf_function.of_string_located attr.value with
              | Error { message; position } ->
                  let sp =
                    match position with
                    | Some p -> { sp with Diagnostic.col = attr.value_col + p }
                    | None -> sp
                  in
                  add
                    (Diagnostic.errorf ~span:sp ~code:"parse-error"
                       "bad performance function: %s" message)
              | Ok perf ->
                  acc.o_performance <- Some (perf, sp);
                  (match Perf_function.as_expr perf with
                  | Some expr ->
                      check_expression ~sp ~mech:None ~vocabulary:[ "n" ] expr
                  | None -> ()))
          | "mechanism", Some acc ->
              let name = attr.value in
              service_mech_refs := (name, sp) :: !service_mech_refs;
              let decl =
                match infra with
                | None -> None
                | Some i ->
                    List.find_opt
                      (fun (m : mech_info) -> String.equal m.m_def.name name)
                      i.mechanisms
              in
              (match (infra, decl) with
              | Some _, None ->
                  add
                    (Diagnostic.errorf ~span:sp ~code:"dangling-ref"
                       "mechanism %s is not defined in the infrastructure"
                       name)
              | _ -> ());
              acc.o_mech <- Some (name, decl)
          | "mperformance", Some acc -> (
              let mech =
                match acc.o_mech with Some (_, decl) -> decl | None -> None
              in
              (match (acc.o_mech, infra) with
              | None, _ ->
                  add
                    (Diagnostic.errorf ~span:sp ~code:"orphan-mperformance"
                       "mperformance before any mechanism line")
              | Some _, _ -> ());
              (* Guards name enum parameters of the mechanism. *)
              (match (attr.args, mech) with
              | Some args, Some m ->
                  List.iter
                    (fun entry ->
                      match String.index_opt entry '=' with
                      | None -> ()
                      | Some i ->
                          let key = String.trim (String.sub entry 0 i) in
                          let value =
                            String.trim
                              (String.sub entry (i + 1)
                                 (String.length entry - i - 1))
                          in
                          (match List.assoc_opt key m.m_params with
                          | Some (Enum_param values) ->
                              if not (List.mem value values) then
                                add
                                  (Diagnostic.errorf ~span:sp
                                     ~code:"bad-guard"
                                     "%s is not a value of parameter %s \
                                      (one of: %s)"
                                     value key
                                     (String.concat ", " values))
                          | Some (Duration_param _) ->
                              add
                                (Diagnostic.errorf ~span:sp ~code:"bad-guard"
                                   "guard parameter %s is not an enum" key)
                          | None ->
                              add
                                (Diagnostic.errorf ~span:sp ~code:"bad-guard"
                                   "guard names unknown parameter %s" key)))
                    (String.split_on_char ',' args)
              | _ -> ());
              match Slowdown.of_string_located attr.value with
              | Error { message; position } ->
                  add
                    (Diagnostic.errorf
                       ~span:{ sp with Diagnostic.col = attr.value_col + position }
                       ~code:"parse-error" "bad mperformance: %s" message)
              | Ok slowdown -> (
                  match Slowdown.as_expr slowdown with
                  | None -> ()
                  | Some expr ->
                      let vocabulary =
                        "n"
                        ::
                        (match mech with
                        | None -> []
                        | Some m ->
                            List.filter_map
                              (fun (name, info) ->
                                match info with
                                | Duration_param _ -> Some name
                                | Enum_param _ -> None)
                              m.m_params)
                      in
                      (* Without an infrastructure the vocabulary is
                         unknown; skip the free-variable check then. *)
                      if infra <> None && mech <> None then
                        check_expression ~sp ~mech ~vocabulary expr
                      else begin
                        ignore
                          (Dim.infer ~env:(dim_env mech)
                             ~report:(dim_reporter sp) expr);
                        Expr_lint.lint
                          ~bindings:(probe_bindings mech)
                          ~report:(fun severity ~code message ->
                            add
                              (Diagnostic.make ~span:sp severity ~code message))
                          expr
                      end))
          | _ -> ())
        line.attrs)
    lines;
  close_option ();
  {
    s_file = file;
    s_diags = List.rev !diags;
    resource_refs = List.rev !resource_refs;
    service_mech_refs = List.rev !service_mech_refs;
  }

(* --- cross-file liveness --------------------------------------------- *)

let liveness ~(infra : infra_scan) ~(services : service_scan list) =
  if services = [] then []
  else begin
    let diags = ref [] in
    let add d = diags := d :: !diags in
    let used_resources =
      List.concat_map (fun s -> List.map fst s.resource_refs) services
    in
    let service_mechs =
      List.concat_map (fun s -> List.map fst s.service_mech_refs) services
    in
    List.iter
      (fun (r : def) ->
        if not (List.mem r.name used_resources) then
          add
            (Diagnostic.warningf ~span:r.span ~code:"unused-def"
               "resource %s is not used by any service" r.name))
      infra.resources;
    List.iter
      (fun (m : mech_info) ->
        if
          (not (List.mem m.m_def.name infra.mech_refs))
          && not (List.mem m.m_def.name service_mechs)
        then
          add
            (Diagnostic.warningf ~span:m.m_def.span ~code:"unused-def"
               "mechanism %s is referenced by no component or service"
               m.m_def.name))
      infra.mechanisms;
    List.rev !diags
  end
