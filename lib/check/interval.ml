(* Outward-rounded interval arithmetic over floats.

   An interval [{lo; hi}] stands for the set of reals [lo, hi]; the
   endpoints may be infinite ([top] is the whole real line) but never
   NaN — any operation whose concrete counterpart could produce NaN
   (division by an interval containing zero, log of a negative,
   0-containing bases under [pow], ...) widens to [top], so NaN
   unrepresentability can never make the abstraction unsound.

   Rounding discipline: OCaml evaluates float operations round-to-
   nearest, so a computed endpoint may sit on the wrong side of the
   true bound by up to half an ulp. Every inexact operation therefore
   nudges its result outward with [Float.pred]/[Float.succ] ([add],
   [mul], [div], [exp], [log], [sqrt]; [pow] composes two roundings
   and nudges twice). Operations that are exact in floating point
   ([neg], [abs], [min], [max], [floor], [ceil], [hull]) keep their
   endpoints as computed. *)

type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }
let is_top t = t.lo = neg_infinity && t.hi = infinity

let point v = if Float.is_nan v then top else { lo = v; hi = v }

let of_bounds lo hi =
  if Float.is_nan lo || Float.is_nan hi then top
  else if lo <= hi then { lo; hi }
  else { lo = hi; hi = lo }

let lo t = t.lo
let hi t = t.hi
let is_point t = t.lo = t.hi

(* NaN is a member only of [top]: abstract evaluation widens to [top]
   exactly where a concrete evaluation could produce NaN, and the
   soundness property below needs membership to agree with that. *)
let mem x t = if Float.is_nan x then is_top t else t.lo <= x && x <= t.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi
let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let meet a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

(* Outward nudges. [Float.pred infinity = max_float] would tighten a
   correct infinite bound, so infinities pass through unchanged; a NaN
   endpoint (conservatively possible from 0 * inf corner products that
   slipped past the operation's own handling) widens all the way. *)
let down x =
  if Float.is_nan x then neg_infinity
  else if x = neg_infinity || x = infinity then x
  else Float.pred x

let up x =
  if Float.is_nan x then infinity
  else if x = infinity || x = neg_infinity then x
  else Float.succ x

let widen t = { lo = down t.lo; hi = up t.hi }
let add a b = widen { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = widen { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let neg t = { lo = -.t.hi; hi = -.t.lo }

(* Endpoint products, with Kahan's convention for the 0 * inf corner:
   such a NaN arises only when one factor's endpoint is exactly zero,
   and zero is then the correct contribution of that corner to the
   range over the closed box. *)
let mul a b =
  let p x y =
    let v = x *. y in
    if Float.is_nan v then 0. else v
  in
  let p1 = p a.lo b.lo and p2 = p a.lo b.hi in
  let p3 = p a.hi b.lo and p4 = p a.hi b.hi in
  widen
    {
      lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
      hi = Float.max (Float.max p1 p2) (Float.max p3 p4);
    }

(* Division widens to [top] when the divisor can be zero (the concrete
   result may be ±inf or NaN depending on signs we cannot separate) or
   when an inf/inf corner makes an endpoint quotient NaN. *)
let div a b =
  if b.lo <= 0. && 0. <= b.hi then top
  else
    let q1 = a.lo /. b.lo and q2 = a.lo /. b.hi in
    let q3 = a.hi /. b.lo and q4 = a.hi /. b.hi in
    if
      Float.is_nan q1 || Float.is_nan q2 || Float.is_nan q3 || Float.is_nan q4
    then top
    else
      widen
        {
          lo = Float.min (Float.min q1 q2) (Float.min q3 q4);
          hi = Float.max (Float.max q1 q2) (Float.max q3 q4);
        }

let abs t =
  if t.lo >= 0. then t
  else if t.hi <= 0. then neg t
  else { lo = 0.; hi = Float.max (-.t.lo) t.hi }

let min_ a b = { lo = Float.min a.lo b.lo; hi = Float.min a.hi b.hi }
let max_ a b = { lo = Float.max a.lo b.lo; hi = Float.max a.hi b.hi }

(* exp is monotone; its result is strictly positive, so the downward
   nudge clamps at zero rather than crossing into negatives. *)
let exp t =
  {
    lo = Float.max 0. (down (Float.exp t.lo));
    hi = up (Float.exp t.hi);
  }

(* log of anything possibly negative could be NaN concretely. lo = 0 is
   fine: log 0 = -inf is a representable endpoint. *)
let log t =
  if t.lo < 0. then top
  else { lo = down (Float.log t.lo); hi = up (Float.log t.hi) }

let sqrt t =
  if t.lo < 0. then top
  else
    {
      lo = Float.max 0. (down (Float.sqrt t.lo));
      hi = up (Float.sqrt t.hi);
    }

let floor t = { lo = Float.floor t.lo; hi = Float.floor t.hi }
let ceil t = { lo = Float.ceil t.lo; hi = Float.ceil t.hi }

(* x ** y = exp (y * log x). Over a box with x > 0, y * log x is
   bilinear in (y, log x) and so attains its extremes at the corners;
   exp is monotone, hence the corner powers bound the range. [**]
   composes two roundings, so nudge outward twice. *)
let pow f g =
  if f.lo <= 0. then top
  else
    let c1 = f.lo ** g.lo and c2 = f.lo ** g.hi in
    let c3 = f.hi ** g.lo and c4 = f.hi ** g.hi in
    if
      Float.is_nan c1 || Float.is_nan c2 || Float.is_nan c3 || Float.is_nan c4
    then top
    else
      let lo = Float.min (Float.min c1 c2) (Float.min c3 c4) in
      let hi = Float.max (Float.max c1 c2) (Float.max c3 c4) in
      { lo = Float.max 0. (down (down lo)); hi = up (up hi) }

(* Reciprocal through [div] so zero-crossing divisors widen. *)
let inv t = div (point 1.) t

let clamp ~lo:l ~hi:h t =
  { lo = Float.min h (Float.max l t.lo); hi = Float.max l (Float.min h t.hi) }

let contains_zero t = t.lo <= 0. && 0. <= t.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let to_string t =
  if is_top t then "[-inf, +inf]" else Printf.sprintf "[%.17g, %.17g]" t.lo t.hi

let pp ppf t = Format.pp_print_string ppf (to_string t)
