(** The static analyzer behind [aved check].

    Four analysis families over spec files and programmatic models:
    dimension/unit inference ({!Dim}), cross-reference and liveness
    analysis ({!Surface}), expression lints ({!Expr_lint}), and CTMC
    well-formedness (below). Diagnostics are merged, sorted by source
    position, and deduplicated. *)

val check_files : string list -> Diagnostic.t list
(** Checks a set of spec files together. Files are classified by
    content (an [application] line makes a service spec); service specs
    are resolved against the infrastructure specs in the same set.
    Liveness of resources and mechanisms is only judged when at least
    one service spec is present. *)

val check_model :
  infra:Aved_model.Infrastructure.t ->
  service:Aved_model.Service.t ->
  Diagnostic.t list
(** Model-level checks on an already-parsed pair: per (tier, option), a
    representative design (smallest resource count, first mechanism
    settings, no spares) is instantiated and its exact multi-mode CTMC
    audited via {!check_ctmc}. Diagnostics carry no spans. *)

val check_ctmc : ?context:string -> Aved_markov.Ctmc.t -> Diagnostic.t list
(** CTMC well-formedness: generator rows sum to ~0, no negative
    off-diagonal rates, every state reachable from state 0 and able to
    return to it (no absorbing classes). Single-state chains are
    trivially well-formed. *)

(** {1 Whole-domain bounds mode ([aved check --bounds])} *)

type bounds_outcome = {
  bo_reports : Bounds.report list;  (** One per (tier, resource option). *)
  bo_diags : Diagnostic.t list;
      (** [infeasible-budget] errors, [budget-trivial] notes, and CTMC
          corner-audit findings. *)
  bo_certificates : Certificate.t list;
      (** Proof objects behind the verdicts, for [--certificates]. *)
}

val check_bounds :
  infra:Aved_model.Infrastructure.t ->
  service:Aved_model.Service.t ->
  demand:float option ->
  budget_fraction:float option ->
  bounds_outcome
(** Runs {!Bounds.analyze_option} over every (tier, option), renders
    verdicts as diagnostics, and audits CTMC well-formedness at the
    interval-minimal and -maximal mttr corners of the settings grid
    (closing the single-representative blind spot of {!check_model}).
    For finite-job services [demand] and [budget_fraction] are ignored:
    no downtime-budget verdict applies. *)

val bounds_for_files :
  string list ->
  demand:float option ->
  budget_fraction:float option ->
  bounds_outcome
(** File-level driver: classifies and parses like {!check_files}, then
    runs {!check_bounds} per service spec. Unparsable files contribute
    nothing here — {!check_files} is expected to run alongside and
    report them. *)

val render_bounds : Bounds.report list -> string
(** One bounds line per (tier, option), downtime in minutes/year. *)

val render_certificates : Certificate.t list -> string
(** A JSON array of certificate objects. *)

val render_human : Diagnostic.t list -> string
(** One diagnostic per line, no trailing newline. *)

val render_json : Diagnostic.t list -> string
(** A JSON array of diagnostic objects. *)

val exit_status : strict:bool -> Diagnostic.t list -> int
(** [0] when acceptably clean; [1] when there are errors, or — under
    [strict] — any diagnostics at all. *)
