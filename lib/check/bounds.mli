(** Whole-domain downtime bounds per (tier, resource option).

    An {!analyzer} replays {!Aved_avail}'s analytic availability formula
    in outward-rounded interval arithmetic, with every mechanism setting
    left free: the returned interval brackets the downtime fraction of
    every concrete design with the same resource counts, across the
    whole mechanism-settings grid. The search uses it to prune
    provably-dominated or provably-over-budget candidates; `aved check
    --bounds` uses the region analysis to certify a budget infeasible or
    trivially satisfiable before any search runs.

    The analysis assumes spare resources are inactive (the search
    default). Callers exploring spare-active modes must not consult
    it. *)

type analyzer

val analyzer :
  infra:Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  analyzer option
(** [None] when the option is outside the analyzable fragment: unknown
    resource, or a repair mechanism with no mttr under some setting
    (cases where the concrete model build raises). *)

val tier_name : analyzer -> string
val resource_name : analyzer -> string

val downtime_interval :
  analyzer -> n_active:int -> n_min:int -> n_spare:int -> Interval.t
(** Bounds the concrete [downtime_fraction] of every design with these
    counts, over all mechanism settings. Memoized per analyzer. *)

val design_label : n_active:int -> n_min:int -> n_spare:int -> string
(** ["n=2 m=1 s=1"]-style label used in certificate facts. *)

val class_facts : analyzer -> spares:bool -> Certificate.fact list
(** Per-failure-class rate and outage facts backing a certificate. *)

val mttr_corner_settings :
  infra:Aved_model.Infrastructure.t ->
  resource:Aved_model.Resource.t ->
  (string * Aved_model.Mechanism.setting) list
  * (string * Aved_model.Mechanism.setting) list
(** The (interval-minimal, interval-maximal) mechanism settings by mttr,
    per mechanism independently; mechanisms without an mttr keep their
    first setting in both corners. Drives the CTMC corner audit. *)

(** {1 Region analysis for [aved check --bounds]} *)

type verdict =
  | Infeasible of Certificate.t
      (** Every design the search could evaluate provably exceeds the
          budget. *)
  | Trivially_satisfiable of Certificate.t
      (** Every design the search could evaluate provably meets the
          budget. *)
  | Inconclusive

type report = {
  rp_tier : string;
  rp_resource : string;
  rp_bounds : Interval.t option;
      (** Downtime-fraction hull over the whole search region; [None]
          when the option is unanalyzable. *)
  rp_region : string;  (** Printable description of the region swept. *)
  rp_note : string option;  (** Why unanalyzable, when bounds are [None]. *)
  rp_verdict : verdict option;
      (** [None] when no budget was given or the option is
          unanalyzable. *)
}

val analyze_option :
  infra:Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  demand:float option ->
  budget_fraction:float option ->
  ?max_extra:int ->
  ?max_spares:int ->
  unit ->
  report
(** Sweeps the conservative superset of (n, n_min, n_spare) triples the
    design search enumerates — [max_extra] and [max_spares] must match
    the search configuration (defaults mirror it) — and renders a
    verdict against [budget_fraction] (downtime fraction of a year).
    [demand] is the tier's throughput requirement; required for
    dynamically sized options with resource failure scope. *)
