(** Abstract interpretation of {!Aved_expr.Expr} over intervals.

    Two analyses share the walk: plain range evaluation (every concrete
    [Expr.eval] result over the boxes lies in the returned interval)
    and a difference-quotient analysis that can prove an expression
    monotone in one variable over its whole domain — the sound
    replacement for point-sampling lints. Dimensions from {!Dim} ride
    along silently (conflicts widen to [Any] instead of reporting;
    the lint pass owns diagnostics). *)

type value = { range : Interval.t; dim : Dim.t }

val decide : Aved_expr.Expr.comparison -> Interval.t -> Interval.t -> bool option
(** Whether the comparison certainly holds / certainly fails over the
    boxes, agreeing with [Expr.compare_holds] on all concrete members
    when decided; [None] when the boxes overlap. *)

val eval : env:(string -> value option) -> Aved_expr.Expr.t -> value
(** Interval evaluation. Decided [If] conditions select their branch;
    undecided ones hull both. Raises [Expr.Unbound_variable] exactly
    where the concrete evaluator would. *)

val eval_range :
  env:(string -> Interval.t option) -> Aved_expr.Expr.t -> Interval.t
(** {!eval} without dimension tracking. *)

type slope = { value : Interval.t; quotient : Interval.t }

val slope : var:string -> env:(string -> Interval.t option) -> Aved_expr.Expr.t -> slope
(** [slope ~var ~env e] bounds, over every fixed assignment of the
    other variables within their boxes, both the value of [e] and every
    difference quotient [(e(x2) - e(x1)) / (x2 - x1)] with
    [x1 < x2] ranging over [env var]. A quotient of {!Interval.top}
    means the expression is outside the analyzable fragment. *)

type monotonicity = Constant | Nondecreasing | Nonincreasing | Unknown

val monotonicity :
  var:string -> env:(string -> Interval.t option) -> Aved_expr.Expr.t ->
  monotonicity
(** Verdict from the sign of {!slope}'s quotient interval. [Unknown]
    means unproven either way, not disproven — callers fall back to
    sampling. *)
