(** Parser for the repo's hand-rolled JSON values ({!Aved_explain.Json}).

    The inverse of {!Aved_explain.Json.to_string}, and a full JSON
    parser for the wire protocol of [aved serve]: requests arrive as
    one JSON document per line. Numbers without [.], [e] or [E] that
    fit in an OCaml [int] parse as [Int]; everything else parses as
    [Float] via [float_of_string], so a serialize/parse/serialize trip
    is byte-stable (both directions go through
    {!Aved_explain.Json.to_string}'s shortest round-tripping float
    representation). [\uXXXX] escapes decode to UTF-8. *)

val of_string : string -> (Aved_explain.Json.t, string) result
(** Parses exactly one JSON document (surrounding whitespace allowed;
    trailing garbage is an error). The error string carries a 0-based
    byte offset. Nesting is limited to 128 levels of containers so
    adversarial input is reported as a parse error rather than
    overflowing the stack. *)

val of_string_exn : string -> Aved_explain.Json.t
(** {!of_string}, raising [Failure] on malformed input. *)
