module Json = Aved_explain.Json
module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Design = Aved_model.Design
module Mechanism = Aved_model.Mechanism
module Candidate = Aved_search.Candidate
module Provenance = Aved_search.Provenance
module Explain = Aved_explain.Explain
module Availability = Aved_reliability.Availability

let schema_version = 2
let min_schema_version = 1

let versioned ?(version = schema_version) fields =
  Json.Obj (("schema_version", Json.Int version) :: fields)

(* ------------------------------------------------------------------ *)
(* Decoding combinators *)

let ( let* ) = Result.bind

let decode_error fmt = Printf.ksprintf (fun s -> Error s) fmt

let as_obj = function
  | Json.Obj fields -> Ok fields
  | _ -> decode_error "expected an object"

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> decode_error "missing field %S" name

let as_string name = function
  | Json.String s -> Ok s
  | _ -> decode_error "field %S: expected a string" name

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> decode_error "field %S: expected an integer" name

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> decode_error "field %S: expected a boolean" name

(* Integral floats serialize without a decimal point and reparse as
   [Int], so any numeric field accepts both constructors. *)
let as_number name = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> decode_error "field %S: expected a number" name

let as_list name = function
  | Json.List l -> Ok l
  | _ -> decode_error "field %S: expected an array" name

let as_number_option name = function
  | Json.Null -> Ok None
  | v ->
      let* f = as_number name v in
      Ok (Some f)

let as_string_option name = function
  | Json.Null -> Ok None
  | v ->
      let* s = as_string name v in
      Ok (Some s)

let as_int_option name = function
  | Json.Null -> Ok None
  | v ->
      let* i = as_int name v in
      Ok (Some i)

let map_result f l =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        loop (y :: acc) rest
  in
  loop [] l

let checked_version fields =
  let* v = field "schema_version" fields in
  let* v = as_int "schema_version" v in
  if v >= min_schema_version && v <= schema_version then Ok fields
  else decode_error "unsupported schema_version %d (this build speaks %d)" v
      schema_version

let string_field name fields = field name fields |> Fun.flip Result.bind (as_string name)
let int_field name fields = field name fields |> Fun.flip Result.bind (as_int name)
let number_field name fields = field name fields |> Fun.flip Result.bind (as_number name)
let list_field name fields = field name fields |> Fun.flip Result.bind (as_list name)

let number_option_field name fields =
  field name fields |> Fun.flip Result.bind (as_number_option name)

(* ------------------------------------------------------------------ *)
(* Shared: resolved tier designs on the wire *)

let setting_value_fields = function
  | Mechanism.Enum_value s -> [ ("enum", Json.String s) ]
  | Mechanism.Duration_value d ->
      [ ("duration_seconds", Json.Float (Duration.seconds d)) ]

let mechanism_setting_to_json (mechanism, setting) =
  Json.Obj
    [
      ("mechanism", Json.String mechanism);
      ( "settings",
        Json.List
          (List.map
             (fun (param, value) ->
               Json.Obj (("param", Json.String param) :: setting_value_fields value))
             setting) );
    ]

let tier_design_to_json (td : Design.tier_design) =
  Json.Obj
    [
      ("tier", Json.String td.tier_name);
      ("resource", Json.String td.resource);
      ("n_active", Json.Int td.n_active);
      ("n_spare", Json.Int td.n_spare);
      ( "spare_active_components",
        Json.List (List.map (fun c -> Json.String c) td.spare_active_components)
      );
      ( "mechanism_settings",
        Json.List (List.map mechanism_setting_to_json td.mechanism_settings) );
    ]

let setting_value_of_json fields =
  match List.assoc_opt "enum" fields with
  | Some v ->
      let* s = as_string "enum" v in
      Ok (Mechanism.Enum_value s)
  | None -> (
      match List.assoc_opt "duration_seconds" fields with
      | Some v ->
          let* f = as_number "duration_seconds" v in
          Ok (Mechanism.Duration_value (Duration.of_seconds f))
      | None -> decode_error "setting: expected \"enum\" or \"duration_seconds\"")

let mechanism_setting_of_json json =
  let* fields = as_obj json in
  let* mechanism = string_field "mechanism" fields in
  let* settings = list_field "settings" fields in
  let* setting =
    map_result
      (fun s ->
        let* sf = as_obj s in
        let* param = string_field "param" sf in
        let* value = setting_value_of_json sf in
        Ok (param, value))
      settings
  in
  Ok (mechanism, setting)

let tier_design_of_json json =
  let* fields = as_obj json in
  let* tier_name = string_field "tier" fields in
  let* resource = string_field "resource" fields in
  let* n_active = int_field "n_active" fields in
  let* n_spare = int_field "n_spare" fields in
  let* spares = list_field "spare_active_components" fields in
  let* spare_active_components =
    map_result (as_string "spare_active_components") spares
  in
  let* mechs = list_field "mechanism_settings" fields in
  let* mechanism_settings = map_result mechanism_setting_of_json mechs in
  match
    Design.tier_design ~tier_name ~resource ~n_active ~n_spare
      ~spare_active_components ~mechanism_settings ()
  with
  | td -> Ok td
  | exception Invalid_argument m -> decode_error "tier %S: %s" tier_name m

(* ------------------------------------------------------------------ *)
(* Design results *)

type design_result = {
  feasible : bool;
  design : Design.t option;
  cost : float option;
  downtime_minutes : float option;
  execution_hours : float option;
}

let design_result_of_report = function
  | None ->
      {
        feasible = false;
        design = None;
        cost = None;
        downtime_minutes = None;
        execution_hours = None;
      }
  | Some (r : Aved_search.Service_search.report) ->
      {
        feasible = true;
        design = Some r.design;
        cost = Some (Money.to_float r.cost);
        downtime_minutes = Option.map Duration.minutes r.downtime;
        execution_hours = Option.map Duration.hours r.execution_time;
      }

let design_to_json (d : Design.t) =
  Json.Obj
    [
      ("service", Json.String d.service_name);
      ("tiers", Json.List (List.map tier_design_to_json d.tiers));
    ]

let design_result_to_json ?version r =
  if not r.feasible then versioned ?version [ ("feasible", Json.Bool false) ]
  else
    versioned ?version
      [
        ("feasible", Json.Bool true);
        ( "design",
          match r.design with Some d -> design_to_json d | None -> Json.Null );
        ("cost", Json.of_float_option r.cost);
        ("downtime_minutes_per_year", Json.of_float_option r.downtime_minutes);
        ("execution_time_hours", Json.of_float_option r.execution_hours);
      ]

let design_of_json json =
  let* fields = as_obj json in
  let* service_name = string_field "service" fields in
  let* tiers = list_field "tiers" fields in
  let* tiers = map_result tier_design_of_json tiers in
  Ok (Design.make ~service_name ~tiers)

let design_result_of_json json =
  let* fields = as_obj json in
  let* fields = checked_version fields in
  let* feasible = field "feasible" fields in
  let* feasible = as_bool "feasible" feasible in
  if not feasible then
    Ok
      {
        feasible = false;
        design = None;
        cost = None;
        downtime_minutes = None;
        execution_hours = None;
      }
  else
    let* design_json = field "design" fields in
    let* design =
      match design_json with
      | Json.Null -> Ok None
      | v ->
          let* d = design_of_json v in
          Ok (Some d)
    in
    let* cost = number_option_field "cost" fields in
    let* downtime_minutes =
      number_option_field "downtime_minutes_per_year" fields
    in
    let* execution_hours = number_option_field "execution_time_hours" fields in
    Ok { feasible = true; design; cost; downtime_minutes; execution_hours }

(* ------------------------------------------------------------------ *)
(* Frontier results *)

type frontier_point = {
  family : string;
  point_cost : float;
  point_downtime_minutes : float;
  point_design : Design.tier_design;
}

type frontier_result = {
  frontier_tier : string;
  demand : float;
  points : frontier_point list;
}

let frontier_result_of_candidates ~tier ~demand candidates =
  {
    frontier_tier = tier;
    demand;
    points =
      List.map
        (fun (c : Candidate.t) ->
          {
            family =
              Candidate.family c
                ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min;
            point_cost = Money.to_float c.cost;
            point_downtime_minutes = Duration.minutes (Candidate.downtime c);
            point_design = c.design;
          })
        candidates;
  }

let frontier_point_to_json p =
  Json.Obj
    [
      ("family", Json.String p.family);
      ("cost", Json.Float p.point_cost);
      ("downtime_minutes_per_year", Json.Float p.point_downtime_minutes);
      ("design", tier_design_to_json p.point_design);
    ]

let frontier_result_to_json ?version f =
  versioned ?version
    [
      ("tier", Json.String f.frontier_tier);
      ("demand", Json.Float f.demand);
      ("points", Json.List (List.map frontier_point_to_json f.points));
    ]

let frontier_point_of_json json =
  let* fields = as_obj json in
  let* family = string_field "family" fields in
  let* point_cost = number_field "cost" fields in
  let* point_downtime_minutes =
    number_field "downtime_minutes_per_year" fields
  in
  let* design = field "design" fields in
  let* point_design = tier_design_of_json design in
  Ok { family; point_cost; point_downtime_minutes; point_design }

let frontier_result_of_json json =
  let* fields = as_obj json in
  let* fields = checked_version fields in
  let* frontier_tier = string_field "tier" fields in
  let* demand = number_field "demand" fields in
  let* points = list_field "points" fields in
  let* points = map_result frontier_point_of_json points in
  Ok { frontier_tier; demand; points }

(* ------------------------------------------------------------------ *)
(* Explain results *)

type contribution = {
  label : string;
  repair_mechanism : string option;
  fraction : float;
  contribution_minutes : float;
  contribution_nines : float;
}

type mechanism_share = {
  mechanism : string option;
  share_fraction : float;
  share_minutes : float;
}

type fate_detail = No_detail | Text_detail of string | Number_detail of float

type runner_up = {
  runner_design : string;
  fate : string;
  detail : fate_detail;
  runner_cost : float;
  cost_delta : float;
  runner_downtime_minutes : float option;
  downtime_delta_minutes : float option;
  runner_execution_seconds : float option;
}

type explain_tier = {
  explain_tier_name : string;
  tier_design_text : string;
  tier_resource : string;
  tier_n_active : int;
  tier_n_spare : int;
  tier_cost : float;
  tier_fraction : float;
  tier_minutes : float;
  tier_nines : float;
  by_class : contribution list;
  by_mechanism : mechanism_share list;
  mean_failed_resources : float option;
  designs_considered : int;
  runner_ups : runner_up list;
}

type explain_body = {
  explain_service : string;
  explain_engine : string;
  explain_cost : float;
  explain_downtime_minutes : float option;
  explain_execution_seconds : float option;
  noted : int;
  dropped : int;
  explain_tiers : explain_tier list;
}

type explain_result = { explain_feasible : bool; body : explain_body option }

(* The same numeric derivations {!Aved_explain.Explain} renders with. *)
let minutes_of_fraction f = Duration.minutes (Duration.of_years f)

let nines_of_fraction f =
  Availability.nines (Availability.of_fraction (1. -. Float.min 1. f))

let detail_of_fate : Provenance.fate -> fate_detail = function
  | Incumbent -> No_detail
  | Dominated { by } -> Text_detail by
  | Over_downtime_budget { excess } -> Number_detail (Duration.minutes excess)
  | Over_cost_cap { excess } -> Number_detail (Money.to_float excess)
  | Rejected_by_model { reason } -> Text_detail reason
  | Pruned_by_bound { certificate } ->
      Text_detail (Aved_check.Certificate.summary certificate)

let runner_up_of_explain (r : Explain.runner_up) =
  {
    runner_design = Provenance.describe r.record.design;
    fate = Provenance.fate_label r.record.fate;
    detail = detail_of_fate r.record.fate;
    runner_cost = Money.to_float r.record.cost;
    cost_delta = r.cost_delta;
    runner_downtime_minutes = Option.map Duration.minutes r.record.downtime;
    downtime_delta_minutes = r.downtime_delta;
    runner_execution_seconds =
      Option.map Duration.seconds r.record.execution_time;
  }

let tier_of_explain (e : Explain.tier_explanation) =
  let total = e.decomposition.Aved_avail.Evaluate.total in
  {
    explain_tier_name = e.tier_name;
    tier_design_text = Provenance.describe e.design;
    tier_resource = e.design.Design.resource;
    tier_n_active = e.design.Design.n_active;
    tier_n_spare = e.design.Design.n_spare;
    tier_cost = Money.to_float e.cost;
    tier_fraction = total;
    tier_minutes = minutes_of_fraction total;
    tier_nines = nines_of_fraction total;
    by_class =
      List.map
        (fun (c : Aved_avail.Evaluate.class_contribution) ->
          {
            label = c.label;
            repair_mechanism = c.repair_mechanism;
            fraction = c.fraction;
            contribution_minutes = minutes_of_fraction c.fraction;
            contribution_nines = nines_of_fraction c.fraction;
          })
        e.decomposition.by_class;
    by_mechanism =
      List.map
        (fun (mechanism, share_fraction) ->
          {
            mechanism;
            share_fraction;
            share_minutes = minutes_of_fraction share_fraction;
          })
        e.by_mechanism;
    mean_failed_resources = e.mean_failed_resources;
    designs_considered = e.considered;
    runner_ups = List.map runner_up_of_explain e.runner_ups;
  }

let explain_result_of_explanation = function
  | None -> { explain_feasible = false; body = None }
  | Some (t : Explain.t) ->
      {
        explain_feasible = true;
        body =
          Some
            {
              explain_service = t.service_name;
              explain_engine = t.engine;
              explain_cost = Money.to_float t.cost;
              explain_downtime_minutes = Option.map Duration.minutes t.downtime;
              explain_execution_seconds =
                Option.map Duration.seconds t.execution_time;
              noted = t.noted;
              dropped = t.dropped;
              explain_tiers = List.map tier_of_explain t.tiers;
            };
      }

let detail_to_json = function
  | No_detail -> Json.Null
  | Text_detail s -> Json.String s
  | Number_detail f -> Json.Float f

let runner_up_to_json r =
  Json.Obj
    [
      ("design", Json.String r.runner_design);
      ("fate", Json.String r.fate);
      ("fate_detail", detail_to_json r.detail);
      ("cost", Json.Float r.runner_cost);
      ("cost_delta", Json.Float r.cost_delta);
      ( "downtime_minutes_per_year",
        Json.of_float_option r.runner_downtime_minutes );
      ("downtime_delta_minutes", Json.of_float_option r.downtime_delta_minutes);
      ("execution_time_seconds", Json.of_float_option r.runner_execution_seconds);
    ]

let contribution_to_json c =
  Json.Obj
    [
      ("label", Json.String c.label);
      ("repair_mechanism", Json.of_string_option c.repair_mechanism);
      ("fraction", Json.Float c.fraction);
      ("minutes_per_year", Json.Float c.contribution_minutes);
      ("nines", Json.Float c.contribution_nines);
    ]

let mechanism_share_to_json m =
  Json.Obj
    [
      ("mechanism", Json.of_string_option m.mechanism);
      ("fraction", Json.Float m.share_fraction);
      ("minutes_per_year", Json.Float m.share_minutes);
    ]

let explain_tier_to_json e =
  Json.Obj
    [
      ("tier", Json.String e.explain_tier_name);
      ("design", Json.String e.tier_design_text);
      ("resource", Json.String e.tier_resource);
      ("n_active", Json.Int e.tier_n_active);
      ("n_spare", Json.Int e.tier_n_spare);
      ("cost", Json.Float e.tier_cost);
      ( "downtime",
        Json.Obj
          [
            ("fraction", Json.Float e.tier_fraction);
            ("minutes_per_year", Json.Float e.tier_minutes);
            ("nines", Json.Float e.tier_nines);
            ("by_class", Json.List (List.map contribution_to_json e.by_class));
            ( "by_mechanism",
              Json.List (List.map mechanism_share_to_json e.by_mechanism) );
          ] );
      ("mean_failed_resources", Json.of_float_option e.mean_failed_resources);
      ("designs_considered", Json.Int e.designs_considered);
      ("runner_ups", Json.List (List.map runner_up_to_json e.runner_ups));
    ]

let explain_result_to_json ?version r =
  if not r.explain_feasible then
    versioned ?version [ ("feasible", Json.Bool false) ]
  else
    match r.body with
    | None -> versioned ?version [ ("feasible", Json.Bool false) ]
    | Some b ->
        versioned ?version
          [
            ("feasible", Json.Bool true);
            ("service", Json.String b.explain_service);
            ("engine", Json.String b.explain_engine);
            ("cost", Json.Float b.explain_cost);
            ( "downtime_minutes_per_year",
              Json.of_float_option b.explain_downtime_minutes );
            ( "execution_time_seconds",
              Json.of_float_option b.explain_execution_seconds );
            ( "provenance",
              Json.Obj
                [ ("noted", Json.Int b.noted); ("dropped", Json.Int b.dropped) ]
            );
            ("tiers", Json.List (List.map explain_tier_to_json b.explain_tiers));
          ]

let detail_of_json = function
  | Json.Null -> Ok No_detail
  | Json.String s -> Ok (Text_detail s)
  | Json.Float f -> Ok (Number_detail f)
  | Json.Int i -> Ok (Number_detail (float_of_int i))
  | _ -> decode_error "field \"fate_detail\": expected null, string or number"

let runner_up_of_json json =
  let* fields = as_obj json in
  let* runner_design = string_field "design" fields in
  let* fate = string_field "fate" fields in
  let* detail_json = field "fate_detail" fields in
  let* detail = detail_of_json detail_json in
  let* runner_cost = number_field "cost" fields in
  let* cost_delta = number_field "cost_delta" fields in
  let* runner_downtime_minutes =
    number_option_field "downtime_minutes_per_year" fields
  in
  let* downtime_delta_minutes =
    number_option_field "downtime_delta_minutes" fields
  in
  let* runner_execution_seconds =
    number_option_field "execution_time_seconds" fields
  in
  Ok
    {
      runner_design;
      fate;
      detail;
      runner_cost;
      cost_delta;
      runner_downtime_minutes;
      downtime_delta_minutes;
      runner_execution_seconds;
    }

let contribution_of_json json =
  let* fields = as_obj json in
  let* label = string_field "label" fields in
  let* repair_mechanism = field "repair_mechanism" fields in
  let* repair_mechanism = as_string_option "repair_mechanism" repair_mechanism in
  let* fraction = number_field "fraction" fields in
  let* contribution_minutes = number_field "minutes_per_year" fields in
  let* contribution_nines = number_field "nines" fields in
  Ok { label; repair_mechanism; fraction; contribution_minutes; contribution_nines }

let mechanism_share_of_json json =
  let* fields = as_obj json in
  let* mechanism = field "mechanism" fields in
  let* mechanism = as_string_option "mechanism" mechanism in
  let* share_fraction = number_field "fraction" fields in
  let* share_minutes = number_field "minutes_per_year" fields in
  Ok { mechanism; share_fraction; share_minutes }

let explain_tier_of_json json =
  let* fields = as_obj json in
  let* explain_tier_name = string_field "tier" fields in
  let* tier_design_text = string_field "design" fields in
  let* tier_resource = string_field "resource" fields in
  let* tier_n_active = int_field "n_active" fields in
  let* tier_n_spare = int_field "n_spare" fields in
  let* tier_cost = number_field "cost" fields in
  let* downtime = field "downtime" fields in
  let* downtime_fields = as_obj downtime in
  let* tier_fraction = number_field "fraction" downtime_fields in
  let* tier_minutes = number_field "minutes_per_year" downtime_fields in
  let* tier_nines = number_field "nines" downtime_fields in
  let* by_class = list_field "by_class" downtime_fields in
  let* by_class = map_result contribution_of_json by_class in
  let* by_mechanism = list_field "by_mechanism" downtime_fields in
  let* by_mechanism = map_result mechanism_share_of_json by_mechanism in
  let* mean_failed_resources =
    number_option_field "mean_failed_resources" fields
  in
  let* designs_considered = int_field "designs_considered" fields in
  let* runner_ups = list_field "runner_ups" fields in
  let* runner_ups = map_result runner_up_of_json runner_ups in
  Ok
    {
      explain_tier_name;
      tier_design_text;
      tier_resource;
      tier_n_active;
      tier_n_spare;
      tier_cost;
      tier_fraction;
      tier_minutes;
      tier_nines;
      by_class;
      by_mechanism;
      mean_failed_resources;
      designs_considered;
      runner_ups;
    }

let explain_result_of_json json =
  let* fields = as_obj json in
  let* fields = checked_version fields in
  let* feasible = field "feasible" fields in
  let* feasible = as_bool "feasible" feasible in
  if not feasible then Ok { explain_feasible = false; body = None }
  else
    let* explain_service = string_field "service" fields in
    let* explain_engine = string_field "engine" fields in
    let* explain_cost = number_field "cost" fields in
    let* explain_downtime_minutes =
      number_option_field "downtime_minutes_per_year" fields
    in
    let* explain_execution_seconds =
      number_option_field "execution_time_seconds" fields
    in
    let* provenance = field "provenance" fields in
    let* provenance_fields = as_obj provenance in
    let* noted = int_field "noted" provenance_fields in
    let* dropped = int_field "dropped" provenance_fields in
    let* tiers = list_field "tiers" fields in
    let* explain_tiers = map_result explain_tier_of_json tiers in
    Ok
      {
        explain_feasible = true;
        body =
          Some
            {
              explain_service;
              explain_engine;
              explain_cost;
              explain_downtime_minutes;
              explain_execution_seconds;
              noted;
              dropped;
              explain_tiers;
            };
      }

(* ------------------------------------------------------------------ *)
(* Check results *)

type diagnostic = {
  severity : string;
  code : string;
  file : string option;
  line : int option;
  col : int option;
  message : string;
}

type check_result = { diagnostics : diagnostic list }

let check_result_of_diagnostics diags =
  {
    diagnostics =
      List.map
        (fun (d : Aved_check.Diagnostic.t) ->
          let file, line, col =
            match d.span with
            | Some { file; line; col } -> (Some file, Some line, Some col)
            | None -> (None, None, None)
          in
          {
            severity = Aved_check.Diagnostic.severity_to_string d.severity;
            code = d.code;
            file;
            line;
            col;
            message = d.message;
          })
        diags;
  }

let diagnostic_to_json d =
  Json.Obj
    [
      ("severity", Json.String d.severity);
      ("code", Json.String d.code);
      ("file", Json.of_string_option d.file);
      ("line", (match d.line with Some l -> Json.Int l | None -> Json.Null));
      ("col", (match d.col with Some c -> Json.Int c | None -> Json.Null));
      ("message", Json.String d.message);
    ]

let check_result_to_json ?version c =
  let count severity =
    List.length (List.filter (fun d -> d.severity = severity) c.diagnostics)
  in
  versioned ?version
    [
      ("errors", Json.Int (count "error"));
      ("warnings", Json.Int (count "warning"));
      ("infos", Json.Int (count "info"));
      ("diagnostics", Json.List (List.map diagnostic_to_json c.diagnostics));
    ]

let diagnostic_of_json json =
  let* fields = as_obj json in
  let* severity = string_field "severity" fields in
  let* code = string_field "code" fields in
  let* file = field "file" fields in
  let* file = as_string_option "file" file in
  let* line = field "line" fields in
  let* line = as_int_option "line" line in
  let* col = field "col" fields in
  let* col = as_int_option "col" col in
  let* message = string_field "message" fields in
  Ok { severity; code; file; line; col; message }

let check_result_of_json json =
  let* fields = as_obj json in
  let* fields = checked_version fields in
  let* diags = list_field "diagnostics" fields in
  let* diagnostics = map_result diagnostic_of_json diags in
  Ok { diagnostics }

(* ------------------------------------------------------------------ *)
(* Metrics results *)

type metrics_result = { metrics_content_type : string; body : string }

let metrics_result_to_json ?version m =
  versioned ?version
    [
      ("content_type", Json.String m.metrics_content_type);
      ("body", Json.String m.body);
    ]

let metrics_result_of_json json =
  let* fields = as_obj json in
  let* fields = checked_version fields in
  let* metrics_content_type = string_field "content_type" fields in
  let* body = string_field "body" fields in
  Ok { metrics_content_type; body }
