module Json = Aved_explain.Json

exception Parse_error of int * string

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error (st.pos, message))

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.input in
  while
    st.pos < n
    && match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.input
    && String.sub st.input st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Append the UTF-8 encoding of a Unicode scalar value. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "invalid \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.input then
                  fail st "truncated \\u escape";
                let code =
                  (hex_digit st st.input.[st.pos] lsl 12)
                  lor (hex_digit st st.input.[st.pos + 1] lsl 8)
                  lor (hex_digit st st.input.[st.pos + 2] lsl 4)
                  lor hex_digit st st.input.[st.pos + 3]
                in
                st.pos <- st.pos + 4;
                add_utf8 buf code
            | c -> fail st (Printf.sprintf "invalid escape \\%c" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let n = String.length st.input in
  let is_number_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_number_char st.input.[st.pos] do
    advance st
  done;
  if st.pos = start then fail st "expected a number";
  let text = String.sub st.input start (st.pos - start) in
  let is_integral =
    String.for_all (fun c -> match c with '.' | 'e' | 'E' -> false | _ -> true) text
  in
  if is_integral then
    match int_of_string_opt text with
    | Some i -> Json.Int i
    | None -> (
        (* Out of int range: keep it as a float. *)
        match float_of_string_opt text with
        | Some f -> Json.Float f
        | None ->
            st.pos <- start;
            fail st (Printf.sprintf "malformed number %S" text))
  else
    match float_of_string_opt text with
    | Some f -> Json.Float f
    | None ->
        st.pos <- start;
        fail st (Printf.sprintf "malformed number %S" text)

(* Bounds recursion so adversarial input (thousands of '[') raises
   Parse_error instead of Stack_overflow — the server's reader threads
   rely on every malformed line being reported as a parse error. *)
let max_depth = 128

let rec parse_value st depth =
  if depth > max_depth then
    fail st (Printf.sprintf "nesting deeper than %d levels" max_depth);
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some 'n' -> literal st "null" Json.Null
  | Some 't' -> literal st "true" (Json.Bool true)
  | Some 'f' -> literal st "false" (Json.Bool false)
  | Some '"' -> Json.String (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Json.List []
      end
      else begin
        let items = ref [ parse_value st (depth + 1) ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st (depth + 1) :: !items;
          skip_ws st
        done;
        expect st ']';
        Json.List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Json.Obj []
      end
      else begin
        let member () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let value = parse_value st (depth + 1) in
          (key, value)
        in
        let fields = ref [ member () ] in
        skip_ws st;
        while peek st = Some ',' do
          advance st;
          fields := member () :: !fields;
          skip_ws st
        done;
        expect st '}';
        Json.Obj (List.rev !fields)
      end
  | Some _ -> parse_number st

let of_string input =
  let st = { input; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length input then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, message) ->
      Error (Printf.sprintf "json parse error at offset %d: %s" pos message)

let of_string_exn input =
  match of_string input with Ok v -> v | Error e -> failwith e
