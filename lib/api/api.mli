(** The versioned wire API of Aved.

    One place defines the JSON shape of every machine-readable result —
    design, frontier, explain, check — and both front ends render
    through it: the one-shot CLI ([aved design --json], [aved frontier
    --json], [aved explain --json], [aved check --json]) and the
    [aved serve] daemon. A server response is therefore byte-identical
    to the CLI output for the same specification and request.

    Every top-level encoding carries a [schema_version] field
    ({!schema_version}); decoders reject documents whose version they
    do not understand, so clients can pin fixtures and detect skew.

    Encoders pair with decoders ([*_of_json]) whose re-encoding is
    byte-identical to the original document (floats round-trip through
    {!Aved_explain.Json}'s shortest representation), which the test
    suite pins with golden fixtures. *)

module Json = Aved_explain.Json

val schema_version : int
(** Current (maximum) version of every encoding in this module. Bump
    when a field changes meaning or disappears; adding fields is also
    a bump — decoders are exact. *)

val min_schema_version : int
(** Oldest version this build still speaks. Decoders accept the whole
    [min_schema_version .. schema_version] range; encoders can render
    any version in it via their [?version] argument (defaulting to
    {!schema_version}), which is how the serve daemon answers a v1
    request with byte-identical v1 bytes. *)

val versioned : ?version:int -> (string * Json.t) list -> Json.t
(** Wrap fields into an object led by ["schema_version"]. *)

(** {1 Design results} *)

type design_result = {
  feasible : bool;
  design : Aved_model.Design.t option;
  cost : float option;  (** Currency units per year. *)
  downtime_minutes : float option;  (** Predicted annual downtime. *)
  execution_hours : float option;  (** Predicted job completion. *)
}

val design_result_of_report :
  Aved_search.Service_search.report option -> design_result

val design_result_to_json : ?version:int -> design_result -> Json.t
val design_result_of_json : Json.t -> (design_result, string) result

(** {1 Frontier results} *)

type frontier_point = {
  family : string;
      (** The paper's design-family label ({!Aved_search.Candidate.family}). *)
  point_cost : float;
  point_downtime_minutes : float;
  point_design : Aved_model.Design.tier_design;
}

type frontier_result = {
  frontier_tier : string;
  demand : float;
  points : frontier_point list;
}

val frontier_result_of_candidates :
  tier:string -> demand:float -> Aved_search.Candidate.t list -> frontier_result

val frontier_result_to_json : ?version:int -> frontier_result -> Json.t
val frontier_result_of_json : Json.t -> (frontier_result, string) result

(** {1 Explain results} *)

type contribution = {
  label : string;
  repair_mechanism : string option;
  fraction : float;
  contribution_minutes : float;
  contribution_nines : float;
}

type mechanism_share = {
  mechanism : string option;
  share_fraction : float;
  share_minutes : float;
}

type fate_detail = No_detail | Text_detail of string | Number_detail of float

type runner_up = {
  runner_design : string;  (** {!Aved_search.Provenance.describe} text. *)
  fate : string;
  detail : fate_detail;
  runner_cost : float;
  cost_delta : float;
  runner_downtime_minutes : float option;
  downtime_delta_minutes : float option;
  runner_execution_seconds : float option;
}

type explain_tier = {
  explain_tier_name : string;
  tier_design_text : string;
  tier_resource : string;
  tier_n_active : int;
  tier_n_spare : int;
  tier_cost : float;
  tier_fraction : float;
  tier_minutes : float;
  tier_nines : float;
  by_class : contribution list;
  by_mechanism : mechanism_share list;
  mean_failed_resources : float option;
  designs_considered : int;
  runner_ups : runner_up list;
}

type explain_body = {
  explain_service : string;
  explain_engine : string;
  explain_cost : float;
  explain_downtime_minutes : float option;
  explain_execution_seconds : float option;
  noted : int;
  dropped : int;
  explain_tiers : explain_tier list;
}

type explain_result = { explain_feasible : bool; body : explain_body option }

val explain_result_of_explanation :
  Aved_explain.Explain.t option -> explain_result
(** [None] encodes an infeasible search ([{"feasible":false}]). *)

val explain_result_to_json : ?version:int -> explain_result -> Json.t
val explain_result_of_json : Json.t -> (explain_result, string) result

(** {1 Check results} *)

type diagnostic = {
  severity : string;  (** ["error"], ["warning"] or ["info"]. *)
  code : string;
  file : string option;
  line : int option;
  col : int option;
  message : string;
}

type check_result = { diagnostics : diagnostic list }

val check_result_of_diagnostics :
  Aved_check.Diagnostic.t list -> check_result

val check_result_to_json : ?version:int -> check_result -> Json.t
(** Also emits derived [errors]/[warnings]/[infos] counts; the decoder
    recomputes them, keeping round trips byte-stable. *)

val check_result_of_json : Json.t -> (check_result, string) result

(** {1 Metrics results}

    The [metrics] wire verb of [aved serve]: the body is a complete
    Prometheus text-format (0.0.4) exposition of the daemon's metric
    registries — request/stage latency histograms, queue and
    connection gauges, GC/runtime stats and the SLO series — carried
    as a string inside the JSON envelope so the wire protocol stays
    newline-delimited JSON. [content_type] is what an HTTP exposition
    of the same body would declare
    ({!Aved_obs.Prometheus.content_type}-compatible). *)

type metrics_result = { metrics_content_type : string; body : string }

val metrics_result_to_json : ?version:int -> metrics_result -> Json.t
val metrics_result_of_json : Json.t -> (metrics_result, string) result
