(** Exemplar store: the bridge from latency histograms to traces.

    For every sampled request the daemon records the request's trace id
    against the histogram bucket its end-to-end latency landed in
    (per-verb and overall). {!Prometheus.render} appends these to the
    matching [_bucket] lines in OpenMetrics exemplar syntax —
    [... # {trace_id="<id>"} <value> <ts>] — so "what is living in the
    p99 bucket?" is answered by feeding the exemplar's id to
    [aved trace]. Latest-wins per bucket; memory is bounded by
    (families x log-buckets). *)

type exemplar = {
  ex_trace_id : string;
  ex_value : float;  (** The observation itself, in the metric's unit. *)
  ex_ts : float;  (** Wall-clock seconds when observed. *)
}

type t

val create : unit -> t

val observe :
  t -> metric:string -> trace_id:string -> value:float -> now:float -> unit
(** Record [value]'s exemplar under the histogram bucket it falls in
    (the registry's log-bucket bounds). [metric] is the unsanitized
    histogram name. Thread-safe. *)

val find : t -> metric:string -> le:float -> exemplar option
(** The exemplar attached to the bucket with upper bound [le], if any. *)

val count : t -> int
