(** Process-unique request trace identifiers.

    Every connection and request the serve daemon touches is tagged
    with a trace id that threads through the structured request log,
    so one request's lifecycle can be followed across reader and
    dispatcher threads. Ids are 16 lowercase hex digits: a per-process
    random base (seeded from the pid and the clock at module
    initialization) mixed with an atomic sequence number, so they are
    unique within a process, overwhelmingly unique across daemon
    restarts, and cheap enough for the accept path. *)

val fresh : unit -> string
(** A new 16-hex-digit id. Thread- and domain-safe. *)

val sampled : string -> rate:float -> bool
(** Head-sampling decision for a trace id: deterministic in [id], true
    for roughly a [rate] fraction of ids. [rate >= 1.] always samples,
    [rate <= 0.] (and NaN) never does. *)
