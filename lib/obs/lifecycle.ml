module Telemetry = Aved_telemetry.Telemetry
module Json = Aved_explain.Json

type t = {
  lc_trace_id : string;
  lc_verb : string;
  conn_id : int;
  req_id : Json.t;
  started_s : float;
  mutable stamps : (string * float) list; (* newest first *)
  lc_trace : Telemetry.Trace.t option;
  mutable lc_handle_span : int; (* 0 until [handle_context] allocates *)
}

let start ?trace ~trace_id ~verb ~conn_id ~req_id ~now () =
  { lc_trace_id = trace_id; lc_verb = verb; conn_id; req_id;
    started_s = now; stamps = []; lc_trace = trace; lc_handle_span = 0 }

let stamp t stage = t.stamps <- (stage, Unix.gettimeofday ()) :: t.stamps

let trace_id t = t.lc_trace_id
let verb t = t.lc_verb
let trace t = t.lc_trace
let started_s t = t.started_s
let conn_id t = t.conn_id

(* The handle-stage span id is allocated on demand (at dispatch) so the
   verb handler's spans can parent under it while it is still open; the
   span itself is recorded at [finish], when its duration is known. *)
let handle_context t =
  match t.lc_trace with
  | None -> None
  | Some tr ->
      if t.lc_handle_span = 0 then
        t.lc_handle_span <- Telemetry.Trace.alloc_span_id tr;
      Some (Telemetry.Trace.context tr ~parent:t.lc_handle_span)

let elapsed_s t =
  let last =
    match t.stamps with (_, s) :: _ -> s | [] -> Unix.gettimeofday ()
  in
  last -. t.started_s

(* Histogram handles keyed by full metric name. Telemetry.Histogram.make
   is itself an interning lookup under a mutex; this cache just avoids
   re-allocating the name string seven times per request. *)
let handles : (string, Telemetry.Histogram.h) Hashtbl.t = Hashtbl.create 64
let handles_mutex = Mutex.create ()

let histogram name =
  Mutex.lock handles_mutex;
  let h =
    match Hashtbl.find_opt handles name with
    | Some h -> h
    | None ->
        let h = Telemetry.Histogram.make name in
        Hashtbl.add handles name h;
        h
  in
  Mutex.unlock handles_mutex;
  h

let finish t ~outcome ~slow_threshold_s =
  let stamps = List.rev t.stamps in
  let end_s =
    match t.stamps with (_, s) :: _ -> s | [] -> t.started_s
  in
  let total_s = end_s -. t.started_s in
  let slow = total_s > slow_threshold_s in
  let record_stages =
    if Telemetry.enabled () then begin
      Telemetry.Histogram.observe
        (histogram (Printf.sprintf "server.verb.%s.seconds" t.lc_verb))
        total_s;
      true
    end
    else false
  in
  (* For sampled requests, synthesize the span tree's spine from the
     stamps: one root span covering the whole request, one child per
     stage. The handle stage reuses the id [handle_context] reserved
     at dispatch, which is what the verb handler's spans parented
     under — so search/solver spans nest below "handle" in the tree. *)
  let record_span =
    match t.lc_trace with
    | None -> fun ~stage:_ ~start:_ ~end_:_ -> ()
    | Some tr ->
        let tid = (Domain.self () :> int) in
        let root = Telemetry.Trace.alloc_span_id tr in
        Telemetry.Trace.record tr ~id:root ~parent:0 ~name:"request"
          ~start_s:t.started_s ~dur_s:total_s ~tid;
        fun ~stage ~start ~end_ ->
          let id =
            if stage = "handle" && t.lc_handle_span <> 0 then t.lc_handle_span
            else Telemetry.Trace.alloc_span_id tr
          in
          Telemetry.Trace.record tr ~id ~parent:root ~name:stage
            ~start_s:start ~dur_s:(end_ -. start) ~tid
  in
  let stages =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, prev) (stage, at) ->
              let dur = at -. prev in
              if record_stages then
                Telemetry.Histogram.observe
                  (histogram
                     (Printf.sprintf "server.stage.%s.%s.seconds" t.lc_verb
                        stage))
                  dur;
              record_span ~stage ~start:prev ~end_:at;
              ( Json.Obj
                  [
                    ("stage", Json.String stage);
                    ("end_s", Json.Float at);
                    ("ms", Json.Float (dur *. 1e3));
                  ]
                :: acc,
                at ))
            ([], t.started_s) stamps))
  in
  Json.Obj
    [
      ("ts", Json.Float t.started_s);
      ("event", Json.String "request");
      ("trace_id", Json.String t.lc_trace_id);
      ("conn", Json.Int t.conn_id);
      ("id", t.req_id);
      ("verb", Json.String t.lc_verb);
      ("outcome", Json.String outcome);
      ("slow", Json.Bool slow);
      ("total_ms", Json.Float (total_s *. 1e3));
      ("stages", Json.List stages);
    ]
