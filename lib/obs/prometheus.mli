(** Prometheus text-format exposition (version 0.0.4) of a telemetry
    registry.

    Renders every counter, gauge and histogram a
    {!Aved_telemetry.Telemetry.t} holds — plus caller-supplied extras
    for values that live outside the registry (SLO snapshots, GC
    statistics, [spans_dropped]) — as the plain-text format Prometheus
    and its ecosystem scrape. Metric names are sanitized
    ({!sanitize_name}): the repo's dotted names ([server.queue.depth])
    become underscore names ([server_queue_depth]).

    Histograms render with cumulative [le]-labelled buckets (the
    registry's log-bucket upper bounds), a [+Inf] bucket, [_sum] and
    [_count] series, exactly as Prometheus expects of a native
    histogram-typed family. *)

val content_type : string
(** ["text/plain; version=0.0.4"] — what an HTTP exposition would
    declare; the [metrics] wire verb carries it alongside the body. *)

val sanitize_name : string -> string
(** Map a metric name into the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: every other character becomes ['_'],
    and a leading digit is prefixed with ['_']. *)

val render :
  ?exemplars:Exemplars.t ->
  ?extra_counters:(string * int) list ->
  ?extra_gauges:(string * float) list ->
  Aved_telemetry.Telemetry.t ->
  string
(** The full exposition: one [# TYPE] header per family followed by
    its sample lines, families sorted by name, terminated by a final
    newline. Extras are rendered with the same sanitization; an extra
    whose sanitized name collides with a registry metric is suffixed
    with [_extra] rather than duplicated.

    With [exemplars], histogram [_bucket] lines whose bucket holds a
    recorded exemplar gain an OpenMetrics-syntax trailer
    [... # {trace_id="<id>"} <value> <ts>] linking the bucket to a
    sampled request's trace. The base format stays 0.0.4 — consumers
    that cannot ingest exemplars strip from [" # "]. *)
