(** One request's lifecycle: a trace id plus per-stage timestamps from
    the moment its line was read off the socket to the moment its
    response write returned.

    The serve daemon's stage model is a strict partition of the
    request's wall time — each {!stamp} marks the {e end} of a stage,
    so stage durations sum exactly to the end-to-end latency (the
    timestamps share one clock read per boundary):

    {v
    read ──parse──▸ ──admit──▸ ──queue──▸ ──handle──▸ ──encode──▸ ──write──▸
    v}

    - [parse]: JSON decode of the request line (reader thread)
    - [admit]: admission-queue push or shed decision (reader thread)
    - [queue]: time waiting in the bounded admission queue
    - [handle]: the verb handler — spec load, search, evaluation
    - [encode]: response serialization to the wire envelope
    - [write]: the socket write back to the client

    A request that never reaches a stage (shed at admission, malformed
    line) simply stops stamping; {!finish} records whatever stages
    exist. [finish] feeds per-verb, per-stage latency histograms
    ([server.stage.<verb>.<stage>.seconds]) plus a per-verb end-to-end
    histogram ([server.verb.<verb>.seconds]) into the ambient
    telemetry registry, and returns the structured log record the
    [--log] event log stores. *)

type t

val start :
  ?trace:Aved_telemetry.Telemetry.Trace.t ->
  trace_id:string ->
  verb:string ->
  conn_id:int ->
  req_id:Aved_explain.Json.t ->
  now:float ->
  unit ->
  t
(** Begin a lifecycle at [now] (the read timestamp). [verb] is the
    wire verb name, or a synthetic name like ["invalid"] for lines
    that never parsed. [req_id] is the client's id field, echoed into
    the log. [trace] is the span collector of a head-sampled request;
    when present, {!finish} synthesizes the root and per-stage spans
    into it and {!handle_context} hands the verb handler a context to
    parent its spans under. *)

val stamp : t -> string -> unit
(** Mark the end of the named stage at the current wall clock. Stages
    must be stamped in lifecycle order by whichever thread holds the
    request; a lifecycle is owned by one thread at a time (reader,
    then dispatcher), never shared. *)

val trace_id : t -> string
val verb : t -> string

val trace : t -> Aved_telemetry.Telemetry.Trace.t option
(** The sampled request's span collector, if one was attached. *)

val started_s : t -> float
(** The [now] passed to {!start}. *)

val conn_id : t -> int

val handle_context : t -> Aved_telemetry.Telemetry.Trace.context option
(** A trace context parented under the (future) handle-stage span;
    [None] for unsampled requests. Allocates the handle span's id on
    first call — the span itself is recorded by {!finish}, once its
    duration is known, while handler spans parent under it live. *)

val elapsed_s : t -> float
(** Seconds since [start]'s [now] (last stamp if finished). *)

val finish :
  t -> outcome:string -> slow_threshold_s:float -> Aved_explain.Json.t
(** Close the lifecycle: observe stage and end-to-end histograms in
    the ambient telemetry registry (no-ops when none is installed) and
    return the JSON log record: trace id, connection, verb, outcome,
    [slow] flag (end-to-end above [slow_threshold_s]), total
    milliseconds, and per-stage [{stage, end_s, ms}] entries whose
    [end_s] timestamps are monotone. Call exactly once. *)
