(* Host-pressure readings for the daemon's own process. CPU comes from
   [Unix.times] (portable); fd and thread counts come from /proc and
   are [None] where that filesystem does not exist (macOS), so callers
   simply skip the gauge rather than publish a lie. *)

let cpu_seconds () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime

let open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries ->
      (* The readdir itself holds one fd open on the directory. *)
      Some (Stdlib.max 0 (Array.length entries - 1))
  | exception Sys_error _ -> None

let live_threads () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            let prefix = "Threads:" in
            if String.length line > String.length prefix
               && String.sub line 0 (String.length prefix) = prefix
            then
              int_of_string_opt
                (String.trim
                   (String.sub line (String.length prefix)
                      (String.length line - String.length prefix)))
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan
