module Rolling = Aved_telemetry.Rolling

type config = {
  target : float;
  latency_budget_s : float;
  window_s : float;
}

let default_config = { target = 0.999; latency_budget_s = 0.050; window_s = 300. }

let validate_config c =
  if not (Float.is_finite c.target) || c.target <= 0. || c.target > 1. then
    Error "slo target must be in (0, 1]"
  else if not (Float.is_finite c.latency_budget_s) || c.latency_budget_s <= 0.
  then Error "slo latency budget must be positive"
  else if not (Float.is_finite c.window_s) || c.window_s <= 0. then
    Error "slo window must be positive"
  else Ok c

type t = { cfg : config; rolling : Rolling.t }

let create ?(buckets = 60) cfg =
  match validate_config cfg with
  | Error m -> invalid_arg ("Slo.create: " ^ m)
  | Ok cfg ->
      { cfg; rolling = Rolling.create ~window_s:cfg.window_s ~buckets }

let config t = t.cfg

let record t ~now ~ok ~latency_s =
  Rolling.record t.rolling ~now
    ~good:(ok && latency_s <= t.cfg.latency_budget_s)

let record_failure t ~now = Rolling.record t.rolling ~now ~good:false

type snapshot = {
  window_seconds : float;
  target : float;
  total : int;
  good : int;
  bad : int;
  success_rate : float;
  error_budget : float;
  burn_rate : float;
  budget_remaining : float;
  met : bool;
}

let snapshot t ~now =
  let { Rolling.good; bad } = Rolling.totals t.rolling ~now in
  let total = good + bad in
  let success_rate =
    if total = 0 then 1. else float_of_int good /. float_of_int total
  in
  let error_budget = 1. -. t.cfg.target in
  let burn_rate =
    if total = 0 || bad = 0 then 0.
    else if error_budget <= 0. then Float.infinity
    else float_of_int bad /. float_of_int total /. error_budget
  in
  {
    window_seconds = Rolling.window_s t.rolling;
    target = t.cfg.target;
    total;
    good;
    bad;
    success_rate;
    error_budget;
    burn_rate;
    budget_remaining = 1. -. burn_rate;
    met = success_rate >= t.cfg.target;
  }
