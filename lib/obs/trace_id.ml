(* splitmix64 over (base + sequence): the mix makes consecutive ids
   look unrelated while the sequence guarantees in-process uniqueness
   for the first 2^63 requests. *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let base =
  mix
    (Int64.logxor
       (Int64.of_float (Unix.gettimeofday () *. 1e6))
       (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40))

let sequence = Atomic.make 0

let fresh () =
  let n = Atomic.fetch_and_add sequence 1 in
  Printf.sprintf "%016Lx" (mix (Int64.add base (Int64.of_int n)))

(* Head sampling, decided from the id alone so the decision is
   deterministic and reproducible from a logged trace id. The id is
   re-mixed before thresholding: ids are themselves splitmix outputs,
   but re-mixing keeps the decision independent of any structure a
   caller-supplied id might have (tests pass "deadbeef..."). *)
let sampled id ~rate =
  if rate >= 1. then true
  else if rate <= 0. || Float.is_nan rate then false
  else begin
    let h = ref 0L in
    String.iter
      (fun c ->
        h := Int64.add (Int64.mul !h 31L) (Int64.of_int (Char.code c)))
      id;
    let bits = Int64.shift_right_logical (mix !h) 11 in
    (* 53 uniform bits -> [0, 1) *)
    Int64.to_float bits *. 0x1p-53 < rate
  end
