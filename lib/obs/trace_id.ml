(* splitmix64 over (base + sequence): the mix makes consecutive ids
   look unrelated while the sequence guarantees in-process uniqueness
   for the first 2^63 requests. *)

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let base =
  mix
    (Int64.logxor
       (Int64.of_float (Unix.gettimeofday () *. 1e6))
       (Int64.shift_left (Int64.of_int (Unix.getpid ())) 40))

let sequence = Atomic.make 0

let fresh () =
  let n = Atomic.fetch_and_add sequence 1 in
  Printf.sprintf "%016Lx" (mix (Int64.add base (Int64.of_int n)))
