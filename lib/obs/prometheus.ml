module Telemetry = Aved_telemetry.Telemetry

let content_type = "text/plain; version=0.0.4"

let sanitize_name name =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if ok (Buffer.length b) c then Buffer.add_char b c
      else begin
        if i = 0 then Buffer.add_char b '_';
        match c with
        | '0' .. '9' -> Buffer.add_char b c
        | _ -> Buffer.add_char b '_'
      end)
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

(* Prometheus floats: plain decimal, with Inf/NaN spelled its way. *)
let float_text v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render ?(extra_counters = []) ?(extra_gauges = []) t =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 64 in
  let family name =
    let name = sanitize_name name in
    if Hashtbl.mem seen name then name ^ "_extra"
    else begin
      Hashtbl.add seen name ();
      name
    end
  in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let counter (name, v) =
    let name = family name in
    line "# TYPE %s counter\n%s %d\n" name name v
  in
  let gauge (name, v) =
    let name = family name in
    line "# TYPE %s gauge\n%s %s\n" name name (float_text v)
  in
  let histogram (name, (s : Telemetry.Histogram.summary)) =
    let name = family name in
    line "# TYPE %s histogram\n" name;
    let cumulative = ref 0 in
    List.iter
      (fun (ub, n) ->
        cumulative := !cumulative + n;
        line "%s_bucket{le=\"%s\"} %d\n" name (float_text ub) !cumulative)
      s.Telemetry.Histogram.buckets;
    line "%s_bucket{le=\"+Inf\"} %d\n" name s.Telemetry.Histogram.count;
    line "%s_sum %s\n" name (float_text s.Telemetry.Histogram.sum);
    line "%s_count %d\n" name s.Telemetry.Histogram.count
  in
  let by_name l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  List.iter counter (by_name (Telemetry.counters t @ extra_counters));
  List.iter gauge (by_name (Telemetry.gauges t @ extra_gauges));
  List.iter histogram (Telemetry.histograms t);
  Buffer.contents buf
