module Telemetry = Aved_telemetry.Telemetry

let content_type = "text/plain; version=0.0.4"

let sanitize_name name =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if ok (Buffer.length b) c then Buffer.add_char b c
      else begin
        if i = 0 then Buffer.add_char b '_';
        match c with
        | '0' .. '9' -> Buffer.add_char b c
        | _ -> Buffer.add_char b '_'
      end)
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

(* Prometheus floats: plain decimal, with Inf/NaN spelled its way. *)
let float_text v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render ?exemplars ?(extra_counters = []) ?(extra_gauges = []) t =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 64 in
  let family name =
    let name = sanitize_name name in
    if Hashtbl.mem seen name then name ^ "_extra"
    else begin
      Hashtbl.add seen name ();
      name
    end
  in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let counter (name, v) =
    let name = family name in
    line "# TYPE %s counter\n%s %d\n" name name v
  in
  let gauge (name, v) =
    let name = family name in
    line "# TYPE %s gauge\n%s %s\n" name name (float_text v)
  in
  let histogram (name, (s : Telemetry.Histogram.summary)) =
    let metric = name in
    let name = family name in
    line "# TYPE %s histogram\n" name;
    let cumulative = ref 0 in
    List.iter
      (fun (ub, n) ->
        cumulative := !cumulative + n;
        line "%s_bucket{le=\"%s\"} %d" name (float_text ub) !cumulative;
        (* OpenMetrics exemplar syntax on the bucket that holds the
           exemplar's observation; Prometheus >= 2.26 ingests these,
           plain 0.0.4 parsers must strip from " # " (the CI validator
           does). *)
        (match
           Option.bind exemplars (fun ex ->
               Exemplars.find ex ~metric ~le:ub)
         with
        | Some e ->
            (* Trace ids are 16 hex digits — safe verbatim as a label
               value (no escaping needed). *)
            line " # {trace_id=\"%s\"} %s %.3f" e.Exemplars.ex_trace_id
              (float_text e.Exemplars.ex_value)
              e.Exemplars.ex_ts
        | None -> ());
        line "\n")
      s.Telemetry.Histogram.buckets;
    line "%s_bucket{le=\"+Inf\"} %d\n" name s.Telemetry.Histogram.count;
    line "%s_sum %s\n" name (float_text s.Telemetry.Histogram.sum);
    line "%s_count %d\n" name s.Telemetry.Histogram.count
  in
  (* Extras first: a name tracked both by the registry and by a
     server-side total (e.g. trace-ring evictions, whose registry
     counter only counts while a registry is installed) must render
     once, from the authoritative server-side value. *)
  let by_name l =
    let seen = Hashtbl.create 16 in
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.filter
         (fun (name, _) ->
           if Hashtbl.mem seen name then false
           else begin
             Hashtbl.add seen name ();
             true
           end)
         l)
  in
  List.iter counter (by_name (extra_counters @ Telemetry.counters t));
  List.iter gauge (by_name (extra_gauges @ Telemetry.gauges t));
  List.iter histogram (Telemetry.histograms t);
  Buffer.contents buf
