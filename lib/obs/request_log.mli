(** The daemon's structured event log: one JSON object per line.

    Opened once at daemon start ([aved serve --log FILE]) and written
    by reader and dispatcher threads alike, so writes are serialized
    by a mutex and each record is flushed whole — a line is never
    interleaved with another and survives a crash of the next request.
    Every record carries at least ["ts"] (wall-clock seconds) and
    ["event"]; request records add the trace id, verb, per-stage
    timings and outcome (see {!Lifecycle}). *)

type t

val open_path : string -> t
(** Open (append, create 0o644) the log file. Raises [Sys_error] when
    the path cannot be opened. *)

val write : t -> Aved_explain.Json.t -> unit
(** Write one pre-built record (e.g. a {!Lifecycle.finish} result) as
    one line and flush. Thread-safe; a closed log drops the record
    silently (shutdown races are not worth an exception on the answer
    path). *)

val event : t -> ?ts:float -> kind:string -> (string * Aved_explain.Json.t) list -> unit
(** Write [{"ts":<ts>, "event":<kind>, ...fields}] via {!write}. [ts]
    defaults to the current wall clock. *)

val close : t -> unit
(** Flush and close. Idempotent. *)
