module Telemetry = Aved_telemetry.Telemetry

type exemplar = { ex_trace_id : string; ex_value : float; ex_ts : float }

(* Latest-wins per (histogram family, bucket bound): a scrape links
   each latency bucket to the most recent sampled request that landed
   in it, which is exactly the "give me a trace from the tail" workflow
   exemplars exist for. Bounded by families x 64 log buckets. *)
type t = {
  mutex : Mutex.t;
  tbl : (string * float, exemplar) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 64 }

let observe t ~metric ~trace_id ~value ~now =
  let le = Telemetry.Histogram.bound_of_value value in
  Mutex.lock t.mutex;
  Hashtbl.replace t.tbl (metric, le)
    { ex_trace_id = trace_id; ex_value = value; ex_ts = now };
  Mutex.unlock t.mutex

let find t ~metric ~le =
  Mutex.lock t.mutex;
  let e = Hashtbl.find_opt t.tbl (metric, le) in
  Mutex.unlock t.mutex;
  e

let count t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n
