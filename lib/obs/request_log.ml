module Json = Aved_explain.Json

type t = {
  mutex : Mutex.t;
  oc : out_channel;
  mutable log_open : bool;
}

let open_path path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  { mutex = Mutex.create (); oc; log_open = true }

let write t record =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  if t.log_open then begin
    output_string t.oc (Json.to_string record);
    output_char t.oc '\n';
    flush t.oc
  end

let event t ?ts ~kind fields =
  let ts =
    match ts with Some ts -> ts | None -> Unix.gettimeofday ()
  in
  write t
    (Json.Obj
       (("ts", Json.Float ts) :: ("event", Json.String kind) :: fields))

let close t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  if t.log_open then begin
    t.log_open <- false;
    try close_out t.oc with Sys_error _ -> ()
  end
