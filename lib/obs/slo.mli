(** The daemon's own service-level objective: a rolling availability
    target it continuously measures itself against.

    An SLO here is "at least [target] of requests good over a rolling
    [window_s]-second window", where a request is {e good} when it was
    answered successfully within [latency_budget_s] — errors, shed
    requests, queueing-deadline timeouts and slow successes all count
    against the target, the same failure notions the paper's design
    engine budgets for.

    The error budget is the complement of the target: over a window
    holding [total] requests, up to [(1 - target) * total] may be bad.
    {!snapshot} reports how much of that budget the window has
    consumed and the {e burn rate} — the ratio of the observed error
    rate to the budgeted error rate. Burn rate 1.0 consumes the budget
    exactly as fast as the window replenishes it; above 1.0 the budget
    is being exhausted, and [budget_remaining] goes negative once it
    is overspent. As bad events age out of the rolling window the
    budget recovers — downtime is forgiven after [window_s], matching
    the rolling-window SLA convention. *)

type config = {
  target : float;  (** Good fraction required, in (0, 1]. *)
  latency_budget_s : float;  (** A success slower than this is bad. *)
  window_s : float;  (** Rolling measurement window. *)
}

val default_config : config
(** 99.9% of requests good within 50 ms over a 300 s window. *)

val validate_config : config -> (config, string) result

type t

val create : ?buckets:int -> config -> t
(** [buckets] sets the rolling window's granularity (default 60);
    raises [Invalid_argument] on a config {!validate_config} rejects. *)

val config : t -> config

val record : t -> now:float -> ok:bool -> latency_s:float -> unit
(** Record one finished request: good iff [ok] and
    [latency_s <= latency_budget_s]. Thread-safe. *)

val record_failure : t -> now:float -> unit
(** Record a request that never produced a latency (shed at admission,
    refused while draining): always bad. *)

type snapshot = {
  window_seconds : float;
  target : float;
  total : int;  (** Requests in the window. *)
  good : int;
  bad : int;
  success_rate : float;  (** [good/total]; 1.0 on an empty window. *)
  error_budget : float;  (** Allowed bad fraction, [1 - target]. *)
  burn_rate : float;
      (** Observed bad fraction over the budgeted bad fraction; 0.0 on
          an empty window, [infinity] when a zero budget is violated. *)
  budget_remaining : float;
      (** [1 - burn_rate]: fraction of the window's error budget still
          unspent; negative once overspent. *)
  met : bool;  (** [success_rate >= target] (empty windows pass). *)
}

val snapshot : t -> now:float -> snapshot
