module Telemetry = Aved_telemetry.Telemetry
module Json = Aved_explain.Json

(* Ring evictions are visible to scrapes: a trace id that 404s on the
   [trace] verb was either unsampled or aged out, and this counter says
   how much aging-out is happening. *)
let evictions_counter = Telemetry.Counter.make "server.trace.ring.evictions"

type completed = {
  trace_id : string;
  verb : string;
  conn_id : int;
  outcome : string;
  started_s : float;
  total_s : float;
  spans : Telemetry.Trace.span list;
  spans_dropped : int;
  counters : (string * int) list;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  by_id : (string, completed) Hashtbl.t;
  order : string Queue.t; (* oldest first *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Trace_store.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    capacity;
    by_id = Hashtbl.create (2 * capacity);
    order = Queue.create ();
    evicted = 0;
  }

let add t completed =
  Mutex.lock t.mutex;
  Hashtbl.replace t.by_id completed.trace_id completed;
  Queue.push completed.trace_id t.order;
  while Queue.length t.order > t.capacity do
    let oldest = Queue.pop t.order in
    (* A re-added id (impossible for fresh ids, harmless otherwise)
       may already be gone; only count real evictions. *)
    if Hashtbl.mem t.by_id oldest then begin
      Hashtbl.remove t.by_id oldest;
      t.evicted <- t.evicted + 1;
      Telemetry.Counter.incr evictions_counter
    end
  done;
  Mutex.unlock t.mutex

let find t id =
  Mutex.lock t.mutex;
  let c = Hashtbl.find_opt t.by_id id in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.order in
  Mutex.unlock t.mutex;
  n

let evictions t =
  Mutex.lock t.mutex;
  let n = t.evicted in
  Mutex.unlock t.mutex;
  n

let span_json ~base (s : Telemetry.Trace.span) =
  Json.Obj
    [
      ("id", Json.Int s.Telemetry.Trace.id);
      ("parent", Json.Int s.Telemetry.Trace.parent);
      ("name", Json.String s.Telemetry.Trace.name);
      ("start_ms", Json.Float ((s.Telemetry.Trace.start_s -. base) *. 1e3));
      ("dur_ms", Json.Float (s.Telemetry.Trace.dur_s *. 1e3));
      ("tid", Json.Int s.Telemetry.Trace.tid);
      ("cpu_ms", Json.Float (s.Telemetry.Trace.cpu_s *. 1e3));
      ("minor_words", Json.Float s.Telemetry.Trace.minor_words);
      ("major_words", Json.Float s.Telemetry.Trace.major_words);
    ]

let to_json c =
  Json.Obj
    [
      ("trace_id", Json.String c.trace_id);
      ("verb", Json.String c.verb);
      ("conn", Json.Int c.conn_id);
      ("outcome", Json.String c.outcome);
      ("started_s", Json.Float c.started_s);
      ("total_ms", Json.Float (c.total_s *. 1e3));
      ("spans_dropped", Json.Int c.spans_dropped);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.counters) );
      ( "spans",
        Json.List (List.map (span_json ~base:c.started_s) c.spans) );
    ]
