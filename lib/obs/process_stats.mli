(** Process-level resource readings for the daemon's own gauges:
    [aved top] and metric scrapes should see host pressure (CPU burn,
    fd exhaustion approaching, thread growth), not just app-level
    queues. *)

val cpu_seconds : unit -> float
(** Total process CPU (user + system) seconds since start, from
    [Unix.times]. Monotone — exposed as [process_cpu_seconds_total]. *)

val open_fds : unit -> int option
(** Open file descriptors, counted via [/proc/self/fd]; [None] where
    /proc is unavailable. *)

val live_threads : unit -> int option
(** Live threads of the process, from [/proc/self/status]; [None]
    where /proc is unavailable. *)
