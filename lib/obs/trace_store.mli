(** A bounded ring of completed request traces, keyed by trace id.

    The serve daemon adds every sampled request's finished span tree
    here; the [trace] wire verb looks them up by id. The ring holds
    the most recent [capacity] traces — older ones are evicted (and
    counted, both locally and in the process-wide
    [server.trace.ring.evictions] telemetry counter), so memory stays
    bounded no matter the sampling rate. *)

module Telemetry := Aved_telemetry.Telemetry

(** Everything the daemon knows about one finished, sampled request. *)
type completed = {
  trace_id : string;
  verb : string;
  conn_id : int;
  outcome : string;  (** ["ok"], an error code, or a shed outcome. *)
  started_s : float;  (** Wall clock at the read of the request line. *)
  total_s : float;  (** End-to-end latency (sum of the stage spans). *)
  spans : Telemetry.Trace.span list;  (** Sorted by start time. *)
  spans_dropped : int;  (** Spans lost to the per-trace capacity. *)
  counters : (string * int) list;
      (** Request-scoped deltas of the attributed solver/search
          counters (dispatch-to-finish, so concurrent requests'
          activity can bleed in — an attribution hint). *)
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val add : t -> completed -> unit
(** Insert, evicting the oldest entry when full. Thread-safe. *)

val find : t -> string -> completed option
val length : t -> int

val evictions : t -> int
(** Total entries evicted since [create]. *)

val to_json : completed -> Aved_explain.Json.t
(** The wire encoding the [trace] verb returns: envelope fields plus a
    flat [spans] list ([{id, parent, name, start_ms, dur_ms, tid,
    cpu_ms, minor_words, major_words}], [start_ms] relative to
    [started_s]) from which clients rebuild the tree by [parent]. *)
