(** Knobs for the design-space search. *)

type t = {
  engine : Aved_avail.Evaluate.engine;
      (** Availability engine used inside the loop. *)
  max_extra_resources : int;
      (** How far beyond the performance-derived minimum to explore the
          total resource count of a tier (extras + spares combined). *)
  max_spares : int;  (** Cap on the number of spare resources. *)
  max_total_resources : int;  (** Absolute cap on a tier's resources. *)
  explore_spare_modes : bool;
      (** When false, spares are all-inactive (the paper's application
          tier example); when true, every downward-closed set of
          spare-active components is explored. *)
  prune_bounds : bool;
      (** When true, the searches consult the interval bounds analysis
          ({!Aved_check.Bounds}) to skip availability evaluation of
          candidates that provably cannot win — provably over the
          downtime (or time) budget, or provably dominated by a cheaper
          already-evaluated witness. Each skip is recorded with a
          checkable certificate
          ({!Provenance.fate.Pruned_by_bound}). The found optimum and
          frontier are identical to the unpruned search; only the work
          saved differs. Ignored while [explore_spare_modes] is set
          (the bounds analysis assumes inactive spares). *)
  jobs : int;
      (** Domains the search may use ([>= 1]). The parallel path is
          bit-identical to [jobs = 1]: candidates are merged under a
          total order (cost, then downtime or execution time, then
          {!Aved_model.Design.compare_tier}) and the shared incumbent
          only prunes work that provably cannot win. *)
}

val default : t
(** Analytic engine, up to 8 extra resources, 3 spares, 2000 total,
    all-inactive spares, 1 job. *)

val with_engine : Aved_avail.Evaluate.engine -> t -> t
val with_prune_bounds : bool -> t -> t

val with_jobs : int -> t -> t
(** Raises [Invalid_argument] when [jobs < 1]. *)

val with_memo : t -> t
(** Swaps an [Analytic] engine for [Memoized] with a fresh cache
    (no-op for the other engines). *)
