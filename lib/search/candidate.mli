(** Evaluated tier designs. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

type t = {
  design : Aved_model.Design.tier_design;
  model : Aved_avail.Tier_model.t;
  cost : Money.t;  (** Annual cost of the tier. *)
  downtime_fraction : float;
}

val downtime : t -> Duration.t
(** Expected annual downtime. *)

val availability : t -> Aved_reliability.Availability.t
(** [1 − downtime_fraction]. *)

val nines : t -> float
(** Availability in nines ({!Aved_reliability.Availability.nines}). *)

val pp_nines : Format.formatter -> t -> unit
(** The shared nines formatter used by [explain] and
    [frontier --explain] (and available to [design] output); {!pp}
    itself stays min/yr-only so golden outputs are unchanged. *)

val compare_total : t -> t -> int
(** Cheaper first, then less downtime, then
    {!Aved_model.Design.compare_tier}. A total order on candidates of
    distinct designs, so the search optimum does not depend on
    enumeration (or parallel completion) order. *)

val dominates : t -> t -> bool
(** [dominates a b]: [a] costs no more and is down no more than [b],
    and improves at least one of the two. *)

val pareto : t list -> t list
(** The Pareto frontier over (cost, downtime), sorted by increasing
    cost (and strictly decreasing downtime). Of mutually equal points,
    one survives. *)

val family : t -> n_min_nominal:int -> string
(** The paper's design-family tuple "(resource, setting…, n_extra,
    n_spare)" used to label Fig. 6 — [n_min_nominal] is the minimum
    resource count dictated by performance alone, so
    [n_extra = n_active − n_min_nominal]. Enum mechanism parameters
    (e.g. the maintenance level) appear in the label; duration
    parameters are omitted (they vary continuously). *)

val pp : Format.formatter -> t -> unit
