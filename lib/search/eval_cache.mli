(** Domain-local evaluation cache for the search's inner loop.

    The enumeration in {!Tier_search} and {!Job_search} revisits the
    same (resource option, mechanism settings, spare-active set)
    combination at many resource counts. Everything that does not
    depend on the counts — failure classes, loss window, the effective
    performance curve, per-resource costs — is derived once per
    combination via {!Aved_avail.Tier_model.Skeleton} and kept in
    domain-local storage; downtime fractions of the deterministic
    engines are additionally memoized per (n, m, s) with plain integer
    keys, bypassing the locked global {!Aved_avail.Memo} table.

    Everything served from the cache is bitwise identical to the
    uncached computation (same operations in the same order), so search
    results — including [Rejected] provenance messages — are unchanged.

    Caches auto-invalidate when a different infrastructure value (by
    physical identity) is presented. *)

type entry

val entry :
  infra:Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list ->
  spare_active:string list ->
  entry
(** Get-or-create the calling domain's entry for the combination. *)

val settings_product :
  Aved_model.Infrastructure.t ->
  Aved_model.Resource.t ->
  (string * Aved_model.Mechanism.setting) list list
(** Every combination of settings of the mechanisms the resource
    references. [[[]]] when it references none. *)

val settings_entries :
  infra:Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  ((string * Aved_model.Mechanism.setting) list * entry) list
(** {!settings_product} of the option's resource paired with each
    combination's no-spare entry, memoized per domain so the totals
    loop of a search pays one small lookup per enumeration instead of
    one structural-key lookup per combination. *)

val spare_entries : entry -> (string list * entry) list
(** The spare-operational-mode fan-out of the entry's combination in
    [Resource.downward_closed_subsets] order — the empty mode maps to
    the entry itself — memoized on the entry. *)

val skeleton : entry -> Aved_avail.Tier_model.Skeleton.t

val minimum_actives : entry -> demand:float -> int option
(** As {!Aved_avail.Tier_model.minimum_actives}, memoized. *)

val tier_cost : entry -> n_active:int -> n_spare:int -> Aved_units.Money.t
(** Bitwise identical to [Design.tier_cost] of the corresponding
    design. *)

val model :
  entry ->
  n_active:int ->
  n_spare:int ->
  demand:float option ->
  Aved_avail.Tier_model.t
(** Bitwise identical to [Tier_model.build] of the corresponding design,
    including raising the same [Rejected] exceptions. *)

val downtime_fraction :
  entry -> Aved_avail.Evaluate.engine -> Aved_avail.Tier_model.t -> float
(** The engine's downtime fraction for a model instantiated from this
    entry. [Analytic] and [Memoized] results are cached per
    (n_active, n_min, n_spare) — the full parameter set of those
    engines; validation engines pass through uncached. *)

type counters = { fresh : int; reused : int }

val downtime_counters : unit -> counters
(** Process-wide downtime-table hit counters, also exported as telemetry
    counters [search.eval.downtime.fresh] / [search.eval.downtime.reused]. *)

val reset_downtime_counters : unit -> unit

val reset : unit -> unit
(** Drop the calling domain's cache (tests and benchmarks). *)
