module Model = Aved_model
module Avail = Aved_avail
module Money = Aved_units.Money
module Telemetry = Aved_telemetry.Telemetry

(* One cache entry per (tier, resource option, mechanism settings,
   spare-active set): the tier-model skeleton plus a downtime table
   keyed by the only remaining degrees of freedom, (n_active, n_min,
   n_spare) — exactly the parameter set the availability engines
   consume (cf. [Avail.Memo.key_of]). Entries live in domain-local
   storage: no locking, and each search domain warms its own cache. *)

type key = {
  tier_name : string;
  option : Model.Service.resource_option;
  settings : (string * Model.Mechanism.setting) list;
  spare_active : string list;
}

type entry = {
  key : key;
  skel : Avail.Tier_model.Skeleton.t;
  (* Downtime tables for the models this entry instantiates with and
     without spares. Shared across every entry of the domain whose
     skeleton carries equal failure classes under the same failure
     scope — the complete parameter set of the deterministic engines
     beyond (n, m, s) — so a combination that differs only in
     availability-neutral settings (say, a checkpoint interval) reuses
     downtimes computed under another. *)
  downtime_spare : (int * int * int, float) Hashtbl.t;
  downtime_nospare : (int * int * int, float) Hashtbl.t;
  (* The spare-operational-mode fan-out of this combination, in
     [Resource.downward_closed_subsets] order, resolved lazily: the
     empty mode maps back to this entry itself. *)
  mutable spares : (string list * entry) list option;
}

(* The generic [Hashtbl.hash] samples only the first few leaves of a
   value, and the keys of one resource option share a long common
   prefix — the tier name, the option ASTs, the mechanism and
   parameter names — so every settings combination would land in one
   bucket and each lookup would pay a linear scan with structural
   compares. Hash by folding over EVERY settings leaf instead, so the
   discriminating values (e.g. a checkpoint interval deep inside the
   last mechanism) always reach the accumulator; equality stays full
   structural equality, which is cheap in practice because the search
   threads physically shared option and name values. *)
module Key = struct
  type t = key

  let equal (a : key) (b : key) = a = b

  let hash (k : key) =
    let h = ref (Hashtbl.hash (k.tier_name, k.option.Model.Service.resource)) in
    let mix x = h := (!h * 131) + Hashtbl.hash x in
    List.iter
      (fun (mech, setting) ->
        mix mech;
        List.iter
          (fun (param, value) ->
            mix param;
            match value with
            | Model.Mechanism.Enum_value s -> mix s
            | Model.Mechanism.Duration_value d ->
                mix (Aved_units.Duration.seconds d))
          setting)
      k.settings;
    List.iter mix k.spare_active;
    !h land max_int
end

module Tbl = Hashtbl.Make (Key)

(* The per-option settings enumeration with its entries prefetched,
   keyed cheaply by (tier_name, resource name): one small lookup per
   (option, total) enumeration instead of one structural-key lookup
   per settings combination. *)
type settings_cache = {
  option_used : Model.Service.resource_option;
  pairs : ((string * Model.Mechanism.setting) list * entry) list;
}

type state = {
  (* The cached derivations embed infrastructure lookups; a different
     infrastructure value invalidates everything. Physical identity is
     the right test: the search threads one immutable value through. *)
  mutable infra : Model.Infrastructure.t option;
  entries : entry Tbl.t;
  settings : (string * string, settings_cache) Hashtbl.t;
  (* The downtime-table pool entries draw from, keyed by what the
     deterministic engines consume beyond (n, m, s). Looked up once per
     entry creation, so the structural key is cheap in aggregate. *)
  downtimes :
    ( Model.Service.failure_scope * Avail.Tier_model.failure_class list,
      (int * int * int, float) Hashtbl.t )
    Hashtbl.t;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        infra = None;
        entries = Tbl.create 64;
        settings = Hashtbl.create 16;
        downtimes = Hashtbl.create 16;
      })

let fresh_downtimes = Atomic.make 0
let reused_downtimes = Atomic.make 0
let tm_fresh = Telemetry.Counter.make "search.eval.downtime.fresh"
let tm_reused = Telemetry.Counter.make "search.eval.downtime.reused"

type counters = { fresh : int; reused : int }

let downtime_counters () =
  {
    fresh = Atomic.get fresh_downtimes;
    reused = Atomic.get reused_downtimes;
  }

let reset_downtime_counters () =
  Atomic.set fresh_downtimes 0;
  Atomic.set reused_downtimes 0

let reset () =
  let state = Domain.DLS.get state_key in
  state.infra <- None;
  Tbl.reset state.entries;
  Hashtbl.reset state.settings;
  Hashtbl.reset state.downtimes

let ensure_infra state infra =
  match state.infra with
  | Some current when current == infra -> ()
  | Some _ | None ->
      Tbl.reset state.entries;
      Hashtbl.reset state.settings;
      Hashtbl.reset state.downtimes;
      state.infra <- Some infra

let downtime_table state skel ~spares =
  let key =
    ( Avail.Tier_model.Skeleton.failure_scope skel,
      Avail.Tier_model.Skeleton.classes skel ~spares )
  in
  match Hashtbl.find_opt state.downtimes key with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 32 in
      Hashtbl.add state.downtimes key table;
      table

let entry ~infra ~tier_name ~option ~settings ~spare_active =
  let state = Domain.DLS.get state_key in
  ensure_infra state infra;
  let key = { tier_name; option; settings; spare_active } in
  match Tbl.find_opt state.entries key with
  | Some entry -> entry
  | None ->
      let skel =
        Avail.Tier_model.Skeleton.make ~infra ~tier_name ~option ~settings
          ~spare_active
      in
      let entry =
        {
          key;
          skel;
          downtime_spare = downtime_table state skel ~spares:true;
          downtime_nospare = downtime_table state skel ~spares:false;
          spares = None;
        }
      in
      Tbl.add state.entries key entry;
      entry

let settings_product infra resource =
  let mechanisms = Model.Infrastructure.resource_mechanisms infra resource in
  let rec product = function
    | [] -> [ [] ]
    | (m : Model.Mechanism.t) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun setting ->
            List.map (fun tail -> (m.name, setting) :: tail) tails)
          (Model.Mechanism.settings m)
  in
  product mechanisms

let settings_entries ~infra ~tier_name
    ~(option : Model.Service.resource_option) =
  let state = Domain.DLS.get state_key in
  ensure_infra state infra;
  let k = (tier_name, option.Model.Service.resource) in
  match Hashtbl.find_opt state.settings k with
  | Some cache when cache.option_used == option -> cache.pairs
  | Some _ | None ->
      let resource =
        Model.Infrastructure.resource_exn infra option.Model.Service.resource
      in
      let pairs =
        List.map
          (fun settings ->
            ( settings,
              entry ~infra ~tier_name ~option ~settings ~spare_active:[] ))
          (settings_product infra resource)
      in
      Hashtbl.replace state.settings k { option_used = option; pairs };
      pairs

let spare_entries base =
  match base.spares with
  | Some pairs -> pairs
  | None ->
      let state = Domain.DLS.get state_key in
      let infra =
        match state.infra with
        | Some infra -> infra
        | None ->
            invalid_arg "Eval_cache.spare_entries: entry outlived its cache"
      in
      let { tier_name; option; settings; _ } = base.key in
      let resource =
        Model.Infrastructure.resource_exn infra option.Model.Service.resource
      in
      let pairs =
        List.map
          (fun spare_active ->
            match spare_active with
            | [] -> ([], base)
            | _ ->
                ( spare_active,
                  entry ~infra ~tier_name ~option ~settings ~spare_active ))
          (Model.Resource.downward_closed_subsets resource)
      in
      base.spares <- Some pairs;
      pairs

let skeleton entry = entry.skel

let minimum_actives entry ~demand =
  Avail.Tier_model.Skeleton.minimum_actives entry.skel ~demand

let tier_cost entry ~n_active ~n_spare =
  Avail.Tier_model.Skeleton.tier_cost entry.skel ~n_active ~n_spare

let model entry ~n_active ~n_spare ~demand =
  Avail.Tier_model.Skeleton.instantiate entry.skel ~n_active ~n_spare ~demand

let downtime_fraction entry engine (m : Avail.Tier_model.t) =
  match engine with
  | Avail.Evaluate.Analytic | Avail.Evaluate.Memoized _ -> (
      (* Within a table the downtime is a pure function of this triple
         (classes and scope are fixed by the table's pool key), and the
         engine is deterministic, so the cached value is bitwise what a
         fresh evaluation would produce. *)
      let table =
        if m.n_spare > 0 then entry.downtime_spare else entry.downtime_nospare
      in
      let key = (m.n_active, m.n_min, m.n_spare) in
      match Hashtbl.find_opt table key with
      | Some f ->
          Atomic.incr reused_downtimes;
          if Telemetry.enabled () then Telemetry.Counter.incr tm_reused;
          f
      | None ->
          let f =
            Telemetry.with_trace_span "search.eval.downtime" (fun () ->
                Avail.Evaluate.tier_downtime_fraction engine m)
          in
          Atomic.incr fresh_downtimes;
          if Telemetry.enabled () then Telemetry.Counter.incr tm_fresh;
          Hashtbl.add table key f;
          f)
  | Avail.Evaluate.Exact _ | Avail.Evaluate.Monte_carlo _ ->
      (* Validation engines are not cached: Monte Carlo is stochastic,
         and the exact engine's incremental solver makes its output
         depend on solve order — caching per domain could leak that
         order into the deterministic merge. *)
      Avail.Evaluate.tier_downtime_fraction engine m
