module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Avail = Aved_avail
module Pool = Aved_parallel.Pool
module Incumbent = Aved_parallel.Incumbent
module Telemetry = Aved_telemetry.Telemetry

(* Provenance helper: one record of an enterprise-search candidate.
   Only called from inside a [Provenance.note] thunk or behind
   [Provenance.enabled], so the disabled path stays allocation-free. *)
let provenance_record ~tier (c : Candidate.t) fate =
  {
    Provenance.tier;
    design = c.Candidate.design;
    cost = c.Candidate.cost;
    downtime = Some (Candidate.downtime c);
    execution_time = None;
    fate;
  }

let settings_product = Eval_cache.settings_product

(* The spare-mode fan-out of one (settings, split): each choice paired
   with its cache entry, with the no-spare entry serving the empty
   mode. Order matches [Resource.downward_closed_subsets]. *)
let spare_mode_entries config base_entry ~n_spare =
  if n_spare = 0 || not config.Search_config.explore_spare_modes then
    [ ([], base_entry) ]
  else Eval_cache.spare_entries base_entry

(* One mechanism-settings combination at one total resource count:
   every (active/spare split, spare operational mode) design. Returns
   the evaluated candidates (in enumeration order) together with the
   minimum cost over ALL designs of the combination — including those
   pruned by [cost_cap] or rejected by the model builder — so that the
   caller's stopping rule does not depend on how much work the cap
   happened to save (a prerequisite for schedule-independent parallel
   search). Candidates costing more than [cost_cap] are skipped without
   availability evaluation; equal cost is kept so ties can be broken
   toward lower downtime deterministically. *)
let eval_settings config _infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~total ?cost_cap ?prune
    (settings, base_entry) =
  match Eval_cache.minimum_actives base_entry ~demand with
  | None -> ([], None)
  | Some n_min ->
      let candidates = ref [] in
      let min_cost = ref None in
      let generated = ref 0
      and evaluated = ref 0
      and pruned = ref 0
      and rejected = ref 0
      and bound_pruned = ref 0 in
      let n_values =
        List.filter
          (fun n ->
            n >= n_min && n <= total
            && n - n_min <= config.Search_config.max_extra_resources
            && total - n <= config.Search_config.max_spares)
          (Model.Int_range.to_list option.n_active)
      in
      List.iter
        (fun n_active ->
          let n_spare = total - n_active in
          List.iter
            (fun (spare_active_components, entry) ->
              let design =
                Model.Design.tier_design ~tier_name
                  ~resource:option.resource ~n_active ~n_spare
                  ~spare_active_components ~mechanism_settings:settings ()
              in
              let cost = Eval_cache.tier_cost entry ~n_active ~n_spare in
              incr generated;
              (min_cost :=
                 match !min_cost with
                 | None -> Some cost
                 | Some m -> Some (Money.min m cost));
              match cost_cap with
              | Some cap when not Money.(cost <= cap) ->
                  incr pruned;
                  Provenance.note (fun () ->
                      {
                        Provenance.tier = tier_name;
                        design;
                        cost;
                        downtime = None;
                        execution_time = None;
                        fate = Over_cost_cap { excess = Money.sub cost cap };
                      })
              | Some _ | None -> (
                  match
                    let model =
                      Eval_cache.model entry ~n_active ~n_spare
                        ~demand:(Some demand)
                    in
                    let verdict =
                      match prune with
                      | None -> None
                      | Some (p : Bound_pruning.prune) ->
                          p ~design ~cost ~model
                    in
                    match verdict with
                    | Some certificate -> `Pruned certificate
                    | None ->
                        let downtime_fraction =
                          Eval_cache.downtime_fraction entry
                            config.Search_config.engine model
                        in
                        `Candidate
                          { Candidate.design; model; cost; downtime_fraction }
                  with
                  | `Candidate candidate ->
                      incr evaluated;
                      candidates := candidate :: !candidates
                  | `Pruned certificate ->
                      incr bound_pruned;
                      Provenance.note (fun () ->
                          {
                            Provenance.tier = tier_name;
                            design;
                            cost;
                            downtime = None;
                            execution_time = None;
                            fate =
                              Pruned_by_bound { certificate = certificate () };
                          })
                  | exception Avail.Tier_model.Rejected reason ->
                      incr rejected;
                      Provenance.note (fun () ->
                          {
                            Provenance.tier = tier_name;
                            design;
                            cost;
                            downtime = None;
                            execution_time = None;
                            fate = Rejected_by_model { reason };
                          })))
            (spare_mode_entries config base_entry ~n_spare))
        n_values;
      Search_metrics.flush ~tier_name ~generated:!generated
        ~evaluated:!evaluated ~pruned:!pruned ~rejected:!rejected
        ~bound_pruned:!bound_pruned ();
      (List.rev !candidates, !min_cost)

(* All designs of one option at one total, fanned out over the
   mechanism-settings combinations when a pool is given. The merge is
   by settings index, so the candidate list is identical to the
   sequential enumeration. *)
let enumerate_and_min ?pool config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~total ?cost_cap ?prune
    () =
  let pairs = Eval_cache.settings_entries ~infra ~tier_name ~option in
  let eval pair =
    eval_settings config infra ~tier_name ~option ~demand ~total ?cost_cap
      ?prune pair
  in
  let per_settings =
    match pool with
    | Some pool when Pool.jobs pool > 1 && List.length pairs > 1 ->
        (* Cache entries are domain-local: ship only the settings and
           let each worker resolve them in its own cache. *)
        Pool.map pool
          (fun (settings, _) ->
            eval
              ( settings,
                Eval_cache.entry ~infra ~tier_name ~option ~settings
                  ~spare_active:[] ))
          pairs
    | Some _ | None -> List.map eval pairs
  in
  let candidates = List.concat_map fst per_settings in
  let min_cost =
    List.fold_left
      (fun acc (_, m) ->
        match (acc, m) with
        | None, m | m, None -> m
        | Some a, Some b -> Some (Money.min a b))
      None per_settings
  in
  (candidates, min_cost)

let enumerate_total config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~total ?cost_cap ?prune
    () =
  fst
    (enumerate_and_min config infra ~tier_name ~option ~demand ~total
       ?cost_cap ?prune ())

let option_minimum ~option ~settings ~demand =
  List.filter_map
    (fun s -> Avail.Tier_model.minimum_actives ~option ~settings:s ~demand)
    settings
  |> function
  | [] -> None
  | mins -> Some (List.fold_left Stdlib.min max_int mins)

(* [better a b]: the search's total order — lower cost, then lower
   downtime, then {!Model.Design.compare_tier}. Being total (never
   "equal" for distinct designs) makes the selected optimum a function
   of the candidate *set*, not of the enumeration schedule. *)
let better (a : Candidate.t) (b : Candidate.t) =
  Candidate.compare_total a b < 0

let max_total_for config start =
  Stdlib.min config.Search_config.max_total_resources
    (start + config.Search_config.max_extra_resources
   + config.Search_config.max_spares)

(* Search one resource option. The incumbent logic is branch-local —
   growing the total count, pruning evaluation against the local best,
   stopping when even the cheapest design at the current count cannot
   beat it — so a branch's control flow never depends on what other
   branches found. The [shared] incumbent (the cost of the best
   feasible design found by ANY option so far) only tightens the
   evaluation cap once a local best exists: it skips availability
   evaluations that provably cannot produce the global optimum, and
   skipping them changes neither this branch's stopping points nor the
   merged result (see Aved_parallel.Incumbent). *)
let search_option ?pool ?shared config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~max_downtime () =
  Telemetry.Counter.incr Search_metrics.options_searched;
  let resource = Model.Infrastructure.resource_exn infra option.resource in
  let all_settings = settings_product infra resource in
  match option_minimum ~option ~settings:all_settings ~demand with
  | None -> None
  | Some start ->
      let limit = max_total_for config start in
      let max_downtime_fraction = Duration.years max_downtime in
      let bound_analyzer =
        Bound_pruning.analyzer config ~infra ~tier_name ~option
      in
      let best = ref None in
      let previous_best_downtime = ref Float.infinity in
      let degradations = ref 0 in
      let stop = ref false in
      let total = ref start in
      while (not !stop) && !total <= limit do
        Telemetry.Counter.incr Search_metrics.totals_scanned;
        let cost_cap =
          match !best with
          | None -> None
          | Some b ->
              let cap = b.Candidate.cost in
              Some
                (match shared with
                | Some inc ->
                    let bound = Incumbent.get inc in
                    if bound < Money.to_float cap then begin
                      Telemetry.Counter.incr
                        Search_metrics.incumbent_cap_tightened;
                      Money.of_float bound
                    end
                    else cap
                | None -> cap)
        in
        (* Budget pruning only in iterations that START with an
           incumbent: the no-incumbent stopping rule below folds the
           best downtime over ALL candidates of the iteration, which
           pruning would perturb; with an incumbent, stopping depends
           only on [min_cost_all], which counts pruned designs too. *)
        let prune =
          match (bound_analyzer, !best) with
          | Some an, Some _ ->
              Some
                (Bound_pruning.downtime_budget_prune an
                   ~resource:option.resource ~max_downtime_fraction)
          | _ -> None
        in
        let candidates, min_cost_all =
          enumerate_and_min ?pool config infra ~tier_name ~option ~demand
            ~total:!total ?cost_cap ?prune ()
        in
        let feasible =
          List.filter
            (fun c -> c.Candidate.downtime_fraction <= max_downtime_fraction)
            candidates
        in
        if Provenance.enabled () then
          List.iter
            (fun (c : Candidate.t) ->
              if c.Candidate.downtime_fraction > max_downtime_fraction then
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c
                      (Over_downtime_budget
                         {
                           excess =
                             Duration.sub (Candidate.downtime c) max_downtime;
                         })))
            candidates;
        List.iter
          (fun c ->
            match !best with
            | Some b when not (better c b) ->
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c
                      (Dominated { by = Provenance.describe b.Candidate.design }))
            | Some _ | None ->
                Option.iter
                  (fun b ->
                    Provenance.note (fun () ->
                        provenance_record ~tier:tier_name b
                          (Dominated
                             { by = Provenance.describe c.Candidate.design })))
                  !best;
                best := Some c;
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c Incumbent);
                Option.iter
                  (fun inc ->
                    Incumbent.propose inc (Money.to_float c.Candidate.cost))
                  shared)
          feasible;
        (match !best with
        | Some b -> (
            (* All designs with more resources cost strictly more than
               the cheapest at this count; stop once even the cheapest
               possible design cannot beat the incumbent. *)
            match min_cost_all with
            | None -> stop := true
            | Some m -> if Money.(b.Candidate.cost <= m) then stop := true)
        | None ->
            (* No feasible design yet: give up when adding resources no
               longer improves the best achievable downtime. *)
            let best_downtime_here =
              List.fold_left
                (fun acc c -> Float.min acc c.Candidate.downtime_fraction)
                Float.infinity candidates
            in
            if best_downtime_here >= !previous_best_downtime then begin
              incr degradations;
              if !degradations >= 2 then stop := true
            end
            else degradations := 0;
            previous_best_downtime := best_downtime_here);
        incr total
      done;
      !best

let with_pool ?pool config f =
  match pool with
  | Some pool -> f pool
  | None -> Pool.run ~jobs:config.Search_config.jobs f

let merge_best results =
  List.fold_left
    (fun acc r ->
      match (acc, r) with
      | None, r | r, None -> r
      | Some a, Some b -> if better b a then Some b else Some a)
    None results

(* After the merge, record why each losing branch's local best lost —
   sequentially, so the notes do not race with the pool workers. *)
let note_merge_losers ~tier results winner =
  if Provenance.enabled () then
    List.iter
      (fun result ->
        match result with
        | Some (b : Candidate.t) when b != winner ->
            Provenance.note (fun () ->
                provenance_record ~tier b
                  (Dominated
                     { by = Provenance.describe winner.Candidate.design }))
        | Some _ | None -> ())
      results

let optimal ?pool config infra ~(tier : Model.Service.tier) ~demand
    ~max_downtime =
  Telemetry.with_span "search.tier.optimal" @@ fun () ->
  with_pool ?pool config @@ fun pool ->
  let shared = Incumbent.create () in
  let results =
    Pool.map pool
      (fun option ->
        let body () =
          search_option ~pool ~shared config infra
            ~tier_name:tier.tier_name ~option ~demand ~max_downtime ()
        in
        if Telemetry.enabled () then
          Telemetry.with_span ("search.option:" ^ option.resource) body
        else body ())
      tier.options
  in
  let best = merge_best results in
  Option.iter (note_merge_losers ~tier:tier.tier_name results) best;
  best

let frontier ?pool config infra ~(tier : Model.Service.tier) ~demand =
  Telemetry.with_span "search.tier.frontier" @@ fun () ->
  with_pool ?pool config @@ fun pool ->
  let tasks =
    List.concat_map
      (fun (option : Model.Service.resource_option) ->
        let resource =
          Model.Infrastructure.resource_exn infra option.resource
        in
        let all_settings = settings_product infra resource in
        match option_minimum ~option ~settings:all_settings ~demand with
        | None -> []
        | Some start ->
            let limit = max_total_for config start in
            List.init (limit - start + 1) (fun i -> (option, start + i)))
      tier.options
  in
  let results =
    Pool.map pool
      (fun (option, total) ->
        (* Witness pruning is task-local: the witnesses are candidates
           of this task (one per active/spare split) and every pruned
           design is strictly Pareto-dominated by a witness that
           survives, so the merged frontier is identical to the
           unpruned one (see Bound_pruning.frontier_witness). *)
        let prune =
          Bound_pruning.frontier_witness config infra
            ~tier_name:tier.tier_name ~option ~demand ~total
        in
        enumerate_total config infra ~tier_name:tier.tier_name ~option
          ~demand ~total ?prune ())
      tasks
  in
  let pareto = Candidate.pareto (List.concat results) in
  Search_metrics.observe_frontier (List.length pareto);
  pareto
