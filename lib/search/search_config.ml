type t = {
  engine : Aved_avail.Evaluate.engine;
  max_extra_resources : int;
  max_spares : int;
  max_total_resources : int;
  explore_spare_modes : bool;
  prune_bounds : bool;
  jobs : int;
}

let default =
  {
    engine = Aved_avail.Evaluate.Analytic;
    max_extra_resources = 8;
    max_spares = 3;
    max_total_resources = 2000;
    explore_spare_modes = false;
    prune_bounds = false;
    jobs = 1;
  }

let with_engine engine t = { t with engine }
let with_prune_bounds prune_bounds t = { t with prune_bounds }

let with_jobs jobs t =
  if jobs < 1 then invalid_arg "Search_config.with_jobs: jobs must be >= 1";
  { t with jobs }

let with_memo t =
  match t.engine with
  | Aved_avail.Evaluate.Analytic -> { t with engine = Aved_avail.Evaluate.memoized () }
  | Aved_avail.Evaluate.Memoized _ | Aved_avail.Evaluate.Exact _
  | Aved_avail.Evaluate.Monte_carlo _ ->
      t
