(** Certified pruning for the design searches, built on the interval
    bounds analysis of {!Aved_check.Bounds}.

    Every prune here skips only work whose outcome is already decided:
    the budget prunes fire on candidates whose downtime (or expected
    completion time) lower bound already exceeds the requirement; the
    frontier witness prune fires on candidates that cost at least as
    much as an already-evaluated witness while their downtime lower
    bound exceeds the witness's exact downtime. Callers gate the
    prunes so they never perturb a stopping rule (see the search
    modules); with the gating in place, search results are
    byte-identical with pruning on or off.

    Each fired prune returns a thunk materializing the
    {!Aved_check.Certificate.t} proving the candidate could not win —
    built only inside a {!Provenance.note}, so the no-trail path
    allocates nothing beyond the interval lookup. *)

type prune =
  design:Aved_model.Design.tier_design ->
  cost:Aved_units.Money.t ->
  model:Aved_avail.Tier_model.t ->
  (unit -> Aved_check.Certificate.t) option
(** [None]: evaluate the candidate. [Some certificate]: skip it,
    recording the certificate in its provenance. *)

val analyzer :
  Search_config.t ->
  infra:Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  Aved_check.Bounds.analyzer option
(** The bounds analyzer for one option, or [None] when pruning is off
    ([config.prune_bounds]), spare-active modes are being explored
    (the analysis assumes inactive spares), or the option is outside
    the analyzable fragment. *)

val downtime_budget_prune :
  Aved_check.Bounds.analyzer ->
  resource:string ->
  max_downtime_fraction:float ->
  prune
(** Enterprise budget prune: fires when the candidate's downtime lower
    bound already exceeds the per-tier budget, so it could never pass
    the feasibility filter. *)

val job_time_prune :
  Aved_check.Bounds.analyzer -> job_size:float -> max_time_hours:float -> prune
(** Job budget prune: fires when the failure-free completion time
    divided by the best possible availability already exceeds the
    execution-time requirement. *)

val frontier_witness :
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  demand:float ->
  total:int ->
  prune option
(** Witness prune for one (option, total) task of the tier frontier:
    evaluates the cheapest certain-to-evaluate candidate of every
    active/spare split exactly (through the shared evaluation cache)
    and prunes candidates costing at least as much as some witness
    while their downtime lower bound strictly exceeds that witness's
    downtime — designs the Pareto scan would have dropped. [None] when
    {!analyzer} declines or no split yields a witness. *)
