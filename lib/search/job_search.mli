(** Design-space search for finite jobs (paper §2, §5.2).

    The only requirement is the expected job completion time. The search
    explores resource type, number of (static) active resources, spares,
    spare modes, and mechanism parameters — for the paper's scientific
    example: the checkpoint interval and the checkpoint storage
    location. Counts below the failure-free feasibility threshold are
    skipped without evaluation.

    With [config.jobs > 1] the resource options and the
    mechanism-settings grid are searched on a domain pool; results are
    bit-identical to the sequential search (candidates are ranked
    under a total order — cost, execution time, then
    {!Aved_model.Design.compare_tier} — and cross-branch pruning uses
    only sound cost bounds). *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

type candidate = {
  design : Aved_model.Design.tier_design;
  model : Aved_avail.Tier_model.t;
  cost : Money.t;  (** Annual cost of the infrastructure. *)
  execution_time : Duration.t;  (** Expected job completion time. *)
}

val evaluate :
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  option:Aved_model.Service.resource_option ->
  job_size:float ->
  Aved_model.Design.tier_design ->
  candidate
(** Evaluate one resolved design. *)

val optimal :
  ?pool:Aved_parallel.Pool.t ->
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  job_size:float ->
  max_time:Duration.t ->
  candidate option
(** Minimum-cost design whose expected completion time meets the bound
    (ties broken toward faster completion), or [None]. *)

val frontier :
  ?pool:Aved_parallel.Pool.t ->
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  job_size:float ->
  max_time:Duration.t ->
  candidate list
(** Pareto frontier over (cost, execution time) for designs able to
    finish within [max_time], sorted by increasing cost. *)

val pp_candidate : Format.formatter -> candidate -> unit
