module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Pool = Aved_parallel.Pool
module Incumbent = Aved_parallel.Incumbent
module Telemetry = Aved_telemetry.Telemetry

let combos_tested = Telemetry.Counter.make "search.service.combos_tested"

type tier_outcome = {
  candidate : Candidate.t;
  tier : Model.Service.tier;
}

type report = {
  design : Model.Design.t;
  cost : Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
}

let series_downtime_fraction candidates =
  let up =
    List.fold_left
      (fun acc (c : Candidate.t) -> acc *. (1. -. c.downtime_fraction))
      1. candidates
  in
  1. -. up

let enterprise_report ~service_name candidates =
  let cost =
    Money.sum (List.map (fun (c : Candidate.t) -> c.Candidate.cost) candidates)
  in
  {
    design =
      Model.Design.make ~service_name
        ~tiers:(List.map (fun (c : Candidate.t) -> c.Candidate.design) candidates);
    cost;
    downtime = Some (Duration.of_years (series_downtime_fraction candidates));
    execution_time = None;
  }

(* A combination is identified by its index path through the frontier
   arrays. The total order (cost, then lexicographic path) makes the
   selected combination independent of exploration schedule: equal-cost
   combinations always resolve to the smallest path. *)
let combo_better (cost_a, path_a, _) (cost_b, path_b, _) =
  match Money.compare cost_a cost_b with
  | 0 -> List.compare Int.compare path_a path_b < 0
  | c -> c < 0

(* Exact minimum-cost selection of one frontier point per tier subject
   to the series downtime budget. Frontiers are sorted by increasing
   cost (hence decreasing downtime), which gives two prunes: partial
   cost against the incumbent (local best, tightened by the [shared]
   cost of the best combination found by any branch — equal cost is
   never pruned, so tie-breaking stays deterministic), and
   infeasibility even with the lowest-downtime points of the remaining
   tiers. The top-level fan-out is over the first tier's frontier
   points; each branch explores depth-first and the branch results are
   merged under {!combo_better}. *)
let combine_frontiers ?pool frontiers ~budget_fraction =
  let arrays = Array.of_list (List.map Array.of_list frontiers) in
  let n = Array.length arrays in
  (* min_downtimes.(i): over tiers i.. , the product of
     (1 - best achievable downtime). *)
  let min_downtimes = Array.make (n + 1) 1. in
  for i = n - 1 downto 0 do
    let best =
      Array.fold_left
        (fun acc (c : Candidate.t) -> Float.min acc c.Candidate.downtime_fraction)
        Float.infinity arrays.(i)
    in
    min_downtimes.(i) <- (1. -. best) *. min_downtimes.(i + 1)
  done;
  if n = 0 then if 0. <= budget_fraction then Some [] else None
  else begin
    let shared = Incumbent.create () in
    let explore_from first_idx =
      let best = ref None in
      let rec explore idx chosen_rev path_rev cost_so_far up_so_far =
        if idx = n then begin
          Telemetry.Counter.incr combos_tested;
          if 1. -. up_so_far <= budget_fraction then begin
            let entry =
              (cost_so_far, List.rev path_rev, List.rev chosen_rev)
            in
            match !best with
            | Some b when not (combo_better entry b) -> ()
            | Some _ | None ->
                best := Some entry;
                Incumbent.propose shared (Money.to_float cost_so_far)
          end
        end
        else
          Array.iteri
            (fun i (c : Candidate.t) ->
              let cost = Money.add cost_so_far c.cost in
              let bound =
                Float.min
                  (match !best with
                  | Some (bc, _, _) -> Money.to_float bc
                  | None -> Float.infinity)
                  (Incumbent.get shared)
              in
              let up = up_so_far *. (1. -. c.downtime_fraction) in
              (* Even with the best remaining tiers, can the budget
                 hold? *)
              let attainable = up *. min_downtimes.(idx + 1) in
              if
                Money.to_float cost <= bound
                && 1. -. attainable <= budget_fraction
              then explore (idx + 1) (c :: chosen_rev) (i :: path_rev) cost up)
            arrays.(idx)
      in
      let c = arrays.(0).(first_idx) in
      let up = 1. -. c.Candidate.downtime_fraction in
      if 1. -. (up *. min_downtimes.(1)) <= budget_fraction then
        explore 1 [ c ] [ first_idx ] c.Candidate.cost up;
      !best
    in
    let tasks = List.init (Array.length arrays.(0)) Fun.id in
    let results =
      match pool with
      | Some pool when Pool.jobs pool > 1 -> Pool.map pool explore_from tasks
      | Some _ | None -> List.map explore_from tasks
    in
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | None, r | r, None -> r
        | Some a, Some b -> if combo_better b a then Some b else Some a)
      None results
    |> Option.map (fun (_, _, chosen) -> chosen)
  end

(* Provenance of the frontier combination: for every tier, each
   frontier point cheaper than the chosen one would — with the other
   tiers' choices held fixed — push the series downtime over the
   budget. Record by how much, so the combination step is auditable
   tier by tier. Runs only when a trail is installed, after the
   combination, and never influences the selection. *)
let note_budget_swaps tiers frontiers chosen ~budget_fraction =
  let chosen = Array.of_list chosen in
  List.iteri
    (fun i frontier ->
      let tier_name =
        (List.nth tiers i).Model.Service.tier_name
      in
      let up_others = ref 1. in
      Array.iteri
        (fun j (c : Candidate.t) ->
          if j <> i then up_others := !up_others *. (1. -. c.downtime_fraction))
        chosen;
      List.iter
        (fun (c : Candidate.t) ->
          if Money.(c.cost < chosen.(i).Candidate.cost) then begin
            let total = 1. -. (!up_others *. (1. -. c.downtime_fraction)) in
            if total > budget_fraction then
              Provenance.note (fun () ->
                  {
                    Provenance.tier = tier_name;
                    design = c.design;
                    cost = c.cost;
                    downtime = Some (Candidate.downtime c);
                    execution_time = None;
                    fate =
                      Over_downtime_budget
                        {
                          excess =
                            Duration.of_years (total -. budget_fraction);
                        };
                  })
          end)
        frontier)
    frontiers

let enterprise_design ?pool config infra (service : Model.Service.t)
    ~throughput ~max_annual_downtime =
  let budget_fraction = Duration.years max_annual_downtime in
  let run f l =
    match pool with
    | Some pool when Pool.jobs pool > 1 -> Pool.map pool f l
    | Some _ | None -> List.map f l
  in
  (* Phase 1: each tier in isolation against the full requirement. *)
  let isolated =
    Telemetry.with_span "search.service.isolated" @@ fun () ->
    run
      (fun tier ->
        Tier_search.optimal ?pool config infra ~tier ~demand:throughput
          ~max_downtime:max_annual_downtime)
      service.tiers
  in
  if List.for_all Option.is_some isolated then begin
    let candidates = List.filter_map Fun.id isolated in
    if series_downtime_fraction candidates <= budget_fraction then
      Some (enterprise_report ~service_name:service.service_name candidates)
    else begin
      (* Phase 2: refine with per-tier frontiers and exact combination. *)
      let frontiers =
        Telemetry.with_span "search.service.frontiers" @@ fun () ->
        run
          (fun tier ->
            Tier_search.frontier ?pool config infra ~tier ~demand:throughput)
          service.tiers
      in
      if List.exists (fun f -> f = []) frontiers then None
      else begin
        let chosen =
          Telemetry.with_span "search.service.combine" @@ fun () ->
          combine_frontiers ?pool frontiers ~budget_fraction
        in
        (match chosen with
        | Some chosen when Provenance.enabled () ->
            note_budget_swaps service.tiers frontiers chosen ~budget_fraction
        | Some _ | None -> ());
        Option.map
          (enterprise_report ~service_name:service.service_name)
          chosen
      end
    end
  end
  else None

let job_design ?pool config infra (service : Model.Service.t) ~job_size
    ~max_time =
  match service.tiers with
  | [ tier ] ->
      Job_search.optimal ?pool config infra ~tier ~job_size ~max_time
      |> Option.map (fun (c : Job_search.candidate) ->
             {
               design =
                 Model.Design.make ~service_name:service.service_name
                   ~tiers:[ c.design ];
               cost = c.cost;
               downtime = None;
               execution_time = Some c.execution_time;
             })
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Service_search: finite job %s must have exactly one tier"
           service.service_name)

let design ?pool config infra (service : Model.Service.t) requirements =
  let with_pool f =
    match pool with
    | Some pool -> f pool
    | None -> Pool.run ~jobs:config.Search_config.jobs f
  in
  with_pool @@ fun pool ->
  match (requirements, service.job_size) with
  | Model.Requirements.Enterprise { throughput; max_annual_downtime }, None ->
      enterprise_design ~pool config infra service ~throughput
        ~max_annual_downtime
  | Model.Requirements.Finite_job { max_execution_time }, Some job_size ->
      job_design ~pool config infra service ~job_size
        ~max_time:max_execution_time
  | Model.Requirements.Enterprise _, Some _ ->
      invalid_arg
        "Service_search: enterprise requirements for a finite job service"
  | Model.Requirements.Finite_job _, None ->
      invalid_arg
        "Service_search: job-time requirement for a service without job_size"
