module Money = Aved_units.Money
module Model = Aved_model
module Avail = Aved_avail
module Bounds = Aved_check.Bounds
module Certificate = Aved_check.Certificate
module Interval = Aved_check.Interval

(* Certified pruning for the design searches, built on the interval
   bounds analysis of [Aved_check.Bounds]. Every prune here skips only
   work whose outcome is already decided:

   - the budget prunes fire on candidates whose downtime (or expected
     completion time) lower bound already exceeds the requirement —
     such candidates could only ever land in the infeasible filter;
   - the frontier witness prune fires on candidates that cost at least
     as much as an already-evaluated witness while their downtime lower
     bound exceeds the witness's exact downtime — the Pareto scan would
     drop them against that witness.

   Both are further gated by the callers so that they never perturb a
   stopping rule: the optimal searches prune only in iterations that
   START with an incumbent (the no-incumbent stopping rule folds the
   best downtime over ALL candidates, which pruning would change), and
   the tier frontier has no stopping rule at all. The job frontier's
   scan keys on execution time, which the analysis does not bound
   tightly enough to certify ordering, so it stays unpruned.

   Each returned thunk materializes a [Certificate.t] — built only
   inside a [Provenance.note], so the no-trail path allocates
   nothing beyond the interval lookup. *)

type prune =
  design:Model.Design.tier_design ->
  cost:Money.t ->
  model:Avail.Tier_model.t ->
  (unit -> Certificate.t) option

(* The analyzer for one option, or [None] when pruning is off, the
   option is outside the analyzable fragment, or spare modes are being
   explored (the analysis assumes inactive spares). *)
let analyzer config ~infra ~tier_name ~option =
  if
    config.Search_config.prune_bounds
    && not config.Search_config.explore_spare_modes
  then Bounds.analyzer ~infra ~tier_name ~option
  else None

let model_interval an (model : Avail.Tier_model.t) =
  Bounds.downtime_interval an ~n_active:model.n_active ~n_min:model.n_min
    ~n_spare:model.n_spare

let model_label (model : Avail.Tier_model.t) =
  Bounds.design_label ~n_active:model.n_active ~n_min:model.n_min
    ~n_spare:model.n_spare

(* Enterprise budget prune: downtime lower bound already over the
   per-tier budget, so the candidate could not pass the feasibility
   filter. *)
let downtime_budget_prune an ~resource ~max_downtime_fraction : prune =
 fun ~design:_ ~cost:_ ~model ->
  let iv = model_interval an model in
  if Interval.lo iv > max_downtime_fraction then
    Some
      (fun () ->
        Certificate.make
          (Certificate.Infeasible
             {
               tier = model.tier_name;
               resource;
               budget_fraction = max_downtime_fraction;
               best_case_fraction = Interval.lo iv;
             })
          (Certificate.Budget { fraction = max_downtime_fraction }
          :: Certificate.Downtime_bound
               { design = model_label model; fraction = iv }
          :: Bounds.class_facts an ~spares:(model.n_spare > 0)))
  else None

(* Job budget prune: even at the downtime lower bound, the failure-free
   completion time divided by the best possible availability exceeds
   the time budget. ([Loss_window.expected_job_time] divides the
   failure-free work by availability times a useful fraction <= 1, so
   ideal / (1 - downtime.lo) is a sound lower bound.) A non-positive
   performance is left for the concrete path to reject, and a
   degenerate availability bound (downtime >= 1 possible) is skipped
   rather than certified. *)
let job_time_prune an ~job_size ~max_time_hours : prune =
 fun ~design:_ ~cost:_ ~model ->
  if model.Avail.Tier_model.effective_performance <= 0. then None
  else
    let iv = model_interval an model in
    let availability_upper = 1. -. Interval.lo iv in
    if availability_upper <= 0. then None
    else
      let ideal_hours = job_size /. model.effective_performance in
      let lower_bound_hours = ideal_hours /. availability_upper in
      if lower_bound_hours > max_time_hours then
        Some
          (fun () ->
            let label = model_label model in
            Certificate.make
              (Certificate.Exceeds_time_budget
                 {
                   design = label;
                   max_hours = max_time_hours;
                   ideal_hours;
                   availability_upper;
                   lower_bound_hours;
                 })
              (Certificate.Ideal_time { design = label; hours = ideal_hours }
              :: Certificate.Downtime_bound { design = label; fraction = iv }
              :: Bounds.class_facts an ~spares:(model.n_spare > 0)))
      else None

(* Frontier witness prune for one (option, total) task of the tier
   frontier. For every active/spare split of [total], the cheapest
   candidate certain to evaluate (its settings deliver the demand at
   its active count) becomes a witness; its downtime is computed
   EXACTLY through the shared evaluation cache — the same lookup the
   enumeration will hit, so no net extra work. A candidate costing at
   least as much as some witness while its downtime lower bound
   strictly exceeds that witness's exact downtime is pruned: the
   Pareto scan would have dropped it against the witness.

   One witness per split matters. The globally cheapest candidate of a
   task is typically the spare-heaviest split under its cheapest
   settings — the worst downtime of the whole task, which dominates
   nothing. It is the active-heavy splits' witnesses whose exact
   downtime undercuts entire spare-heavy setting classes.

   A witness can itself be pruned (by a strictly better witness), but
   domination chains terminate: each step strictly decreases exact
   downtime, and the minimal-downtime witness never satisfies the
   strict inequality against its own class interval. Dominance is
   transitive along the chain (costs only decrease, downtimes only
   decrease), so every pruned candidate is dominated by a witness that
   survives into the candidate list and the merged frontier is
   identical to the unpruned one. *)
let frontier_witness config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~total :
    prune option =
  match analyzer config ~infra ~tier_name ~option with
  | None -> None
  | Some an -> (
      let pairs = Eval_cache.settings_entries ~infra ~tier_name ~option in
      (* Cheapest admissible (entry, cost) of one split, ties kept in
         entry order so the witness set is deterministic. *)
      let cheapest_entry ~n_active ~n_spare =
        if n_active > total || n_spare > config.Search_config.max_spares then
          None
        else
          List.fold_left
            (fun acc (_, entry) ->
              match Eval_cache.minimum_actives entry ~demand with
              | None -> acc
              | Some n_min ->
                  if
                    n_active >= n_min
                    && n_active - n_min
                       <= config.Search_config.max_extra_resources
                    && Avail.Tier_model.Skeleton.effective_performance
                         (Eval_cache.skeleton entry) ~n:n_active
                       >= demand
                  then
                    let cost =
                      Eval_cache.tier_cost entry ~n_active ~n_spare
                    in
                    match acc with
                    | Some (_, best_cost) when Money.(best_cost <= cost) ->
                        acc
                    | Some _ | None -> Some (entry, cost)
                  else acc)
            None pairs
      in
      let witnesses =
        List.filter_map
          (fun n_active ->
            let n_spare = total - n_active in
            match cheapest_entry ~n_active ~n_spare with
            | None -> None
            | Some (entry, cost) -> (
                match
                  let model =
                    Eval_cache.model entry ~n_active ~n_spare
                      ~demand:(Some demand)
                  in
                  let downtime =
                    Eval_cache.downtime_fraction entry
                      config.Search_config.engine model
                  in
                  (model, downtime)
                with
                | exception Avail.Tier_model.Rejected _ -> None
                | model, downtime -> Some (cost, downtime, model_label model)
                ))
          (List.filter
             (fun n_active -> n_active >= 0 && n_active <= total)
             (Model.Int_range.to_list option.n_active))
      in
      match witnesses with
      | [] -> None
      | _ :: _ ->
          Some
            (fun ~design:_ ~cost ~model ->
              let iv = model_interval an model in
              let lower = Interval.lo iv in
              (* Cite the lowest-downtime dominating witness; which
                 witness is cited never changes WHETHER a candidate is
                 pruned, only the certificate it carries. *)
              let dominating =
                List.fold_left
                  (fun acc (w_cost, w_downtime, w_label) ->
                    if Money.(w_cost <= cost) && w_downtime < lower then
                      match acc with
                      | Some (_, best_downtime, _)
                        when best_downtime <= w_downtime ->
                          acc
                      | Some _ | None -> Some (w_cost, w_downtime, w_label)
                    else acc)
                  None witnesses
              in
              match dominating with
              | None -> None
              | Some (witness_cost, witness_downtime, witness_label) ->
                  Some
                    (fun () ->
                      let label = model_label model in
                      Certificate.make
                        (Certificate.Dominated
                           {
                             design = label;
                             witness = witness_label;
                             cost = Money.to_float cost;
                             witness_cost = Money.to_float witness_cost;
                             downtime_lower_bound = lower;
                             witness_downtime;
                           })
                        (Certificate.Witness_downtime
                           {
                             design = witness_label;
                             fraction = witness_downtime;
                             cost = Money.to_float witness_cost;
                           }
                        :: Certificate.Downtime_bound
                             { design = label; fraction = iv }
                        :: Bounds.class_facts an
                             ~spares:(model.Avail.Tier_model.n_spare > 0)))))
