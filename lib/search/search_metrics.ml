(* Shared telemetry handles of the tier and job searches, plus the
   per-enumeration flush. Candidate counts are accumulated in local
   ints inside the enumeration loops and flushed here in one batch, so
   the hot loops carry no per-design telemetry branches and the
   per-tier counters intern their names once per batch, not once per
   design. *)

module Telemetry = Aved_telemetry.Telemetry

let candidates_generated = Telemetry.Counter.make "search.candidates.generated"
let candidates_evaluated = Telemetry.Counter.make "search.candidates.evaluated"

let candidates_pruned =
  Telemetry.Counter.make "search.candidates.pruned_by_incumbent"

let candidates_rejected =
  Telemetry.Counter.make "search.candidates.rejected_by_model"

let options_searched = Telemetry.Counter.make "search.options.searched"
let totals_scanned = Telemetry.Counter.make "search.totals.scanned"

let incumbent_cap_tightened =
  Telemetry.Counter.make "search.incumbent.cap_tightened"

let frontiers_computed = Telemetry.Counter.make "search.frontiers.computed"
let frontier_size = Telemetry.Histogram.make "search.frontier.size"

(* Flush one enumeration batch into the global counters and their
   per-tier variants ("search.candidates.generated[application]", ...). *)
let flush ~tier_name ~generated ~evaluated ~pruned ~rejected =
  if Telemetry.enabled () then begin
    let batch counter tag v =
      if v > 0 then begin
        Telemetry.Counter.add counter v;
        Telemetry.Counter.add
          (Telemetry.Counter.make
             (Printf.sprintf "search.candidates.%s[%s]" tag tier_name))
          v
      end
    in
    batch candidates_generated "generated" generated;
    batch candidates_evaluated "evaluated" evaluated;
    batch candidates_pruned "pruned_by_incumbent" pruned;
    batch candidates_rejected "rejected_by_model" rejected
  end

let observe_frontier size =
  Telemetry.Counter.incr frontiers_computed;
  if Telemetry.enabled () then
    Telemetry.Histogram.observe frontier_size (float_of_int size)
