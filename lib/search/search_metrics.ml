(* Shared telemetry handles of the tier and job searches, plus the
   per-enumeration flush. Candidate counts are accumulated in local
   ints inside the enumeration loops and flushed here in one batch, so
   the hot loops carry no per-design telemetry branches and the
   per-tier counters intern their names once per batch, not once per
   design. *)

module Telemetry = Aved_telemetry.Telemetry

let candidates_generated = Telemetry.Counter.make "search.candidates.generated"
let candidates_evaluated = Telemetry.Counter.make "search.candidates.evaluated"

let candidates_pruned =
  Telemetry.Counter.make "search.candidates.pruned_by_incumbent"

let candidates_rejected =
  Telemetry.Counter.make "search.candidates.rejected_by_model"

let candidates_bound_pruned =
  Telemetry.Counter.make "search.candidates.pruned_by_bound"

(* Always-on tallies, independent of the telemetry registry: the
   differential tests assert the pruning rate of a whole figure run
   without installing telemetry. Atomics because flushes arrive from
   pool workers. *)
let generated_total = Atomic.make 0
let bound_pruned_total = Atomic.make 0
let generated_count () = Atomic.get generated_total
let bound_pruned_count () = Atomic.get bound_pruned_total

let reset_counts () =
  Atomic.set generated_total 0;
  Atomic.set bound_pruned_total 0

let options_searched = Telemetry.Counter.make "search.options.searched"
let totals_scanned = Telemetry.Counter.make "search.totals.scanned"

let incumbent_cap_tightened =
  Telemetry.Counter.make "search.incumbent.cap_tightened"

let frontiers_computed = Telemetry.Counter.make "search.frontiers.computed"
let frontier_size = Telemetry.Histogram.make "search.frontier.size"

(* The per-tier counter handles ("search.candidates.generated[application]",
   ...), resolved once per tier per domain: a flush runs once per
   enumeration batch, and interning four sprintf-built names each time
   is measurable against the cached inner loop. Handles are bound to
   names, not to an installed registry, so caching them across
   telemetry install/uninstall cycles is sound. *)
type tier_counters = {
  tc_generated : Telemetry.Counter.h;
  tc_evaluated : Telemetry.Counter.h;
  tc_pruned : Telemetry.Counter.h;
  tc_rejected : Telemetry.Counter.h;
  tc_bound_pruned : Telemetry.Counter.h;
}

let tier_counters_key : (string, tier_counters) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let tier_counters tier_name =
  let table = Domain.DLS.get tier_counters_key in
  match Hashtbl.find_opt table tier_name with
  | Some counters -> counters
  | None ->
      let make tag =
        Telemetry.Counter.make
          (Printf.sprintf "search.candidates.%s[%s]" tag tier_name)
      in
      let counters =
        {
          tc_generated = make "generated";
          tc_evaluated = make "evaluated";
          tc_pruned = make "pruned_by_incumbent";
          tc_rejected = make "rejected_by_model";
          tc_bound_pruned = make "pruned_by_bound";
        }
      in
      Hashtbl.add table tier_name counters;
      counters

(* Flush one enumeration batch into the global counters and their
   per-tier variants. *)
let flush ~tier_name ~generated ~evaluated ~pruned ~rejected
    ?(bound_pruned = 0) () =
  if generated > 0 then ignore (Atomic.fetch_and_add generated_total generated);
  if bound_pruned > 0 then
    ignore (Atomic.fetch_and_add bound_pruned_total bound_pruned);
  if Telemetry.enabled () then begin
    let tier = tier_counters tier_name in
    let batch counter tier_counter v =
      if v > 0 then begin
        Telemetry.Counter.add counter v;
        Telemetry.Counter.add tier_counter v
      end
    in
    batch candidates_generated tier.tc_generated generated;
    batch candidates_evaluated tier.tc_evaluated evaluated;
    batch candidates_pruned tier.tc_pruned pruned;
    batch candidates_rejected tier.tc_rejected rejected;
    batch candidates_bound_pruned tier.tc_bound_pruned bound_pruned
  end

let observe_frontier size =
  Telemetry.Counter.incr frontiers_computed;
  if Telemetry.enabled () then
    Telemetry.Histogram.observe frontier_size (float_of_int size)
