module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Telemetry = Aved_telemetry.Telemetry

type fate =
  | Incumbent
  | Dominated of { by : string }
  | Over_downtime_budget of { excess : Duration.t }
  | Over_cost_cap of { excess : Money.t }
  | Rejected_by_model of { reason : string }
  | Pruned_by_bound of { certificate : Aved_check.Certificate.t }

type record = {
  tier : string;
  design : Aved_model.Design.tier_design;
  cost : Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
  fate : fate;
}

type ring = {
  buf : record option array;
  mutable next : int;  (* slot of the next write *)
  mutable size : int;
}

type t = {
  ring_capacity : int;
  mutex : Mutex.t;
  rings : (string, ring) Hashtbl.t;
  mutable noted : int;
  mutable dropped : int;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Provenance.create: capacity must be >= 1";
  {
    ring_capacity = capacity;
    mutex = Mutex.create ();
    rings = Hashtbl.create 8;
    noted = 0;
    dropped = 0;
  }

let capacity t = t.ring_capacity

(* The ambient trail, mirroring the telemetry registry: at most one
   installed, and [note] is a one-branch no-op without one. *)
let ambient : t option Atomic.t = Atomic.make None

let install t = Atomic.set ambient (Some t)
let uninstall () = Atomic.set ambient None
let enabled () = Atomic.get ambient <> None

let with_trail t f =
  install t;
  Fun.protect ~finally:uninstall f

let fate_label = function
  | Incumbent -> "incumbent"
  | Dominated _ -> "dominated"
  | Over_downtime_budget _ -> "over_downtime_budget"
  | Over_cost_cap _ -> "over_cost_cap"
  | Rejected_by_model _ -> "rejected_by_model"
  | Pruned_by_bound _ -> "pruned_by_bound"

let records_noted = Telemetry.Counter.make "explain.records.noted"
let records_dropped = Telemetry.Counter.make "explain.records.dropped"

let append t record =
  Mutex.lock t.mutex;
  let ring =
    match Hashtbl.find_opt t.rings record.tier with
    | Some r -> r
    | None ->
        let r = { buf = Array.make t.ring_capacity None; next = 0; size = 0 } in
        Hashtbl.add t.rings record.tier r;
        r
  in
  let overwrote = ring.size = t.ring_capacity in
  ring.buf.(ring.next) <- Some record;
  ring.next <- (ring.next + 1) mod t.ring_capacity;
  if overwrote then t.dropped <- t.dropped + 1
  else ring.size <- ring.size + 1;
  t.noted <- t.noted + 1;
  Mutex.unlock t.mutex;
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr records_noted;
    if overwrote then Telemetry.Counter.incr records_dropped;
    Telemetry.Counter.incr
      (Telemetry.Counter.make ("explain.fate." ^ fate_label record.fate))
  end

let note thunk =
  match Atomic.get ambient with
  | None -> ()
  | Some t -> append t (thunk ())

let tiers t =
  Mutex.lock t.mutex;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.rings [] in
  Mutex.unlock t.mutex;
  List.sort String.compare names

let records t ~tier =
  Mutex.lock t.mutex;
  let result =
    match Hashtbl.find_opt t.rings tier with
    | None -> []
    | Some ring ->
        let start =
          if ring.size = t.ring_capacity then ring.next else 0
        in
        List.init ring.size (fun i ->
            match ring.buf.((start + i) mod t.ring_capacity) with
            | Some r -> r
            | None -> assert false)
  in
  Mutex.unlock t.mutex;
  result

let noted t =
  Mutex.lock t.mutex;
  let n = t.noted in
  Mutex.unlock t.mutex;
  n

let dropped t =
  Mutex.lock t.mutex;
  let n = t.dropped in
  Mutex.unlock t.mutex;
  n

let describe design =
  Format.asprintf "%a" Aved_model.Design.pp_tier design
