(** Shared telemetry handles of the tier and job searches.

    The enumeration loops count candidates in local ints and {!flush}
    them in one batch per (settings, total) enumeration — the hot loops
    carry no per-design telemetry work, and nothing here ever changes a
    search result. *)

module Telemetry = Aved_telemetry.Telemetry

val candidates_generated : Telemetry.Counter.h
(** Designs constructed (costed) by the enumeration. *)

val candidates_evaluated : Telemetry.Counter.h
(** Designs whose availability (or job time) was actually evaluated. *)

val candidates_pruned : Telemetry.Counter.h
(** Designs skipped by the incumbent cost cap without evaluation. *)

val candidates_rejected : Telemetry.Counter.h
(** Designs the model builder rejected as structurally invalid. *)

val candidates_bound_pruned : Telemetry.Counter.h
(** Designs skipped by the interval bounds analysis with a
    certificate. *)

val generated_count : unit -> int
(** Designs constructed since the last {!reset_counts}, tallied whether
    or not telemetry is installed. *)

val bound_pruned_count : unit -> int
(** Designs pruned by bounds since the last {!reset_counts}, tallied
    whether or not telemetry is installed. *)

val reset_counts : unit -> unit

val options_searched : Telemetry.Counter.h
val totals_scanned : Telemetry.Counter.h

val incumbent_cap_tightened : Telemetry.Counter.h
(** Iterations whose cost cap was tightened below the branch-local best
    by the shared cross-domain incumbent. *)

val frontiers_computed : Telemetry.Counter.h
val frontier_size : Telemetry.Histogram.h

val flush :
  tier_name:string ->
  generated:int ->
  evaluated:int ->
  pruned:int ->
  rejected:int ->
  ?bound_pruned:int ->
  unit ->
  unit
(** Add one enumeration batch to the global counters and their
    per-tier ["search.candidates.<tag>[<tier>]"] variants. The
    telemetry side is a no-op when telemetry is disabled; the always-on
    {!generated_count}/{!bound_pruned_count} tallies update
    regardless. *)

val observe_frontier : int -> unit
(** Record one computed frontier and its size. *)
