(** Whole-service design (the outer loop of paper §4.1).

    Each tier is first designed in isolation against the full
    requirement; if the series composition of the individually optimal
    tiers already meets the service downtime budget, that combination is
    returned. Otherwise per-tier (cost, downtime) Pareto frontiers are
    computed and the exact minimum-cost combination whose series
    downtime fits the budget is selected — a deterministic realization
    of the paper's "incrementally more aggressive per-tier
    requirements" refinement.

    All phases run on one domain pool of [config.jobs] domains: tier
    searches fan out over tiers (and within them over options and
    mechanism settings), and the frontier combination fans out over the
    first tier's frontier points. Results are bit-identical to
    [jobs = 1]: combinations are ranked by cost then lexicographic
    frontier-index path, and the shared cost incumbent never prunes an
    equal-cost combination. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

type tier_outcome = {
  candidate : Candidate.t;
  tier : Aved_model.Service.tier;
}

type report = {
  design : Aved_model.Design.t;
  cost : Money.t;
  downtime : Duration.t option;
      (** Predicted annual service downtime (enterprise). *)
  execution_time : Duration.t option;
      (** Predicted job completion time (finite jobs). *)
}

val design :
  ?pool:Aved_parallel.Pool.t ->
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  Aved_model.Service.t ->
  Aved_model.Requirements.t ->
  report option
(** The minimum-cost design meeting the requirements, or [None] when
    the design space holds no feasible design. Raises
    [Invalid_argument] when requirements and service type disagree
    (e.g. a job-time requirement for a service without [job_size], or a
    finite job with several tiers). Runs on [pool] when given — a
    long-lived caller (the server) passes one pool so repeated designs
    do not pay domain spawn/join per request — otherwise on a fresh
    pool of [config.jobs] domains. *)

val series_downtime_fraction : Candidate.t list -> float
(** Service downtime fraction of a tier combination (series
    composition, independent tiers). *)
