(** Decision provenance: why every generated candidate won or lost.

    The searches tag candidates with a typed {!fate} and append them to
    an ambient, bounded, per-tier ring buffer (the {e trail}). Like the
    telemetry registry, the trail observes the search without steering
    it: with no trail installed every {!note} costs a single branch and
    allocates nothing, so search results and timings — and the fig6/7/8
    and [design] outputs — are byte-identical to a build without
    provenance. The ring bound keeps memory flat on figure-sized grids
    (a Fig. 6 cell can generate thousands of candidates); once a tier's
    ring is full, the oldest records are overwritten and counted in
    {!dropped}. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

(** What the search decided about a candidate. A candidate may receive
    several records over its life (e.g. [Incumbent] when found, then
    [Dominated] when a better design supersedes it); the latest record
    is its final fate. *)
type fate =
  | Incumbent  (** Best feasible design of its branch when recorded. *)
  | Dominated of { by : string }
      (** Lost the search's total order (cost, then downtime or
          execution time) to the design described by [by]. *)
  | Over_downtime_budget of { excess : Duration.t }
      (** Evaluated but infeasible: annual downtime (or, in job
          searches, expected execution time) exceeds the requirement by
          [excess]. *)
  | Over_cost_cap of { excess : Money.t }
      (** Pruned before availability evaluation: costs [excess] more
          than the incumbent cap. *)
  | Rejected_by_model of { reason : string }
      (** The model layer rejected the design
          ({!Aved_avail.Tier_model.Rejected}): it cannot deliver the
          required throughput. *)
  | Pruned_by_bound of { certificate : Aved_check.Certificate.t }
      (** Skipped without availability evaluation because the interval
          bounds analysis proved it cannot win — over the budget, or
          dominated by a cheaper evaluated witness. The certificate
          carries the proof ({!Aved_check.Certificate.verify}). *)

type record = {
  tier : string;
  design : Aved_model.Design.tier_design;
  cost : Money.t;
  downtime : Duration.t option;
      (** Annual downtime, when the candidate was evaluated by an
          enterprise search. *)
  execution_time : Duration.t option;
      (** Expected job completion time, when evaluated by a job
          search. *)
  fate : fate;
}

type t
(** A trail: one bounded ring of records per tier. Thread-safe — the
    searches note from pool workers. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds each tier's ring (default 512). *)

val capacity : t -> int

val install : t -> unit
(** Make [t] the ambient trail every {!note} records into, replacing
    any previous one. *)

val uninstall : unit -> unit

val enabled : unit -> bool
(** Whether a trail is installed — use to skip work (building fate
    details, swap analyses) that only matters when recording. *)

val with_trail : t -> (unit -> 'a) -> 'a
(** [with_trail t f] installs [t], runs [f], uninstalls again (even on
    exception). *)

val note : (unit -> record) -> unit
(** Append the record to the ambient trail; the thunk only runs when a
    trail is installed. Also counts the fate in the telemetry registry
    (counters [explain.fate.*], [explain.records.*]) when one is
    installed. *)

val tiers : t -> string list
(** Tier names with at least one record, sorted. *)

val records : t -> tier:string -> record list
(** The surviving records of one tier, oldest first. Under parallel
    search the interleaving across settings batches is
    schedule-dependent; consumers must order records themselves before
    presenting them. *)

val noted : t -> int
(** Records ever appended (including overwritten ones). *)

val dropped : t -> int
(** Records overwritten by the ring bound. *)

val describe : Aved_model.Design.tier_design -> string
(** One-line rendering of a design ({!Aved_model.Design.pp_tier}), used
    for [Dominated.by]. *)

val fate_label : fate -> string
(** Stable lower-snake label of the fate constructor, e.g.
    ["over_cost_cap"] — used for telemetry counters and JSON. *)
