module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Avail = Aved_avail
module Perf_function = Aved_perf.Perf_function
module Pool = Aved_parallel.Pool
module Incumbent = Aved_parallel.Incumbent
module Telemetry = Aved_telemetry.Telemetry

type candidate = {
  design : Model.Design.tier_design;
  model : Avail.Tier_model.t;
  cost : Money.t;
  execution_time : Duration.t;
}

(* Provenance helper: one record of a job-search candidate. *)
let provenance_record ~tier c fate =
  {
    Provenance.tier;
    design = c.design;
    cost = c.cost;
    downtime = None;
    execution_time = Some c.execution_time;
    fate;
  }

let evaluate config infra ~option ~job_size design =
  let model = Avail.Tier_model.build ~infra ~option ~design ~demand:None in
  let execution_time =
    Avail.Evaluate.job_completion_time config.Search_config.engine model
      ~job_size
  in
  {
    design;
    model;
    cost = Model.Design.tier_cost infra design;
    execution_time;
  }

(* The search's total order — lower cost, then faster completion, then
   {!Model.Design.compare_tier} — so the selected optimum is a function
   of the candidate set, not of the enumeration schedule. *)
let compare_total a b =
  match Money.compare a.cost b.cost with
  | 0 -> (
      match Duration.compare a.execution_time b.execution_time with
      | 0 -> Model.Design.compare_tier a.design b.design
      | c -> c)
  | c -> c

let better a b = compare_total a b < 0

(* Failure-free completion time at nominal performance — a lower bound
   on the achievable execution time with [n] resources (slowdowns and
   failures only add to it). *)
let ideal_time ~(option : Model.Service.resource_option) ~job_size ~n =
  let perf = Perf_function.eval option.performance ~n in
  if perf <= 0. then None else Some (Duration.of_hours (job_size /. perf))

let feasible_n ~option ~job_size ~max_time n =
  match ideal_time ~option ~job_size ~n with
  | None -> false
  | Some ideal -> Duration.compare ideal max_time <= 0

(* The active/spare splits of [total] that pass the failure-free
   feasibility precheck. Settings-independent, so the caller computes
   it once per (option, total) rather than once per mechanism
   combination. *)
let feasible_splits config ~(option : Model.Service.resource_option)
    ~job_size ~max_time ~total =
  List.filter_map
    (fun n_spare ->
      let n_active = total - n_spare in
      if
        n_active > 0
        && Model.Int_range.mem option.n_active n_active
        && feasible_n ~option ~job_size ~max_time n_active
      then Some (n_active, n_spare)
      else None)
    (List.init (Stdlib.min config.Search_config.max_spares total + 1) Fun.id)

(* One mechanism-settings combination at the precomputed feasible
   splits of one total resource count: every split and spare
   operational mode, each surviving candidate passed to [emit] in
   enumeration order. Returns the minimum cost over ALL designs of the
   combination — including those pruned by [cost_cap] — so the
   caller's stopping rule is independent of the cap (and hence of
   parallel completion order). Designs failing the failure-free
   feasibility precheck are not part of the space and do not count.
   Equal-cost candidates survive the cap so ties can break toward
   faster completion deterministically. *)
let eval_settings_fold config ~tier_name
    ~(option : Model.Service.resource_option) ~job_size ~splits ?cost_cap
    ?prune ~emit (settings, base_entry) =
  let min_cost = ref None in
  let generated = ref 0
  and evaluated = ref 0
  and pruned = ref 0
  and rejected = ref 0
  and bound_pruned = ref 0 in
  List.iter
    (fun (n_active, n_spare) ->
      List.iter
        (fun (spare_active_components, entry) ->
          let design =
            Model.Design.tier_design ~tier_name ~resource:option.resource
              ~n_active ~n_spare ~spare_active_components
              ~mechanism_settings:settings ()
          in
          let cost = Eval_cache.tier_cost entry ~n_active ~n_spare in
          incr generated;
          (min_cost :=
             match !min_cost with
             | None -> Some cost
             | Some m -> Some (Money.min m cost));
          match cost_cap with
          | Some cap when not Money.(cost <= cap) ->
              incr pruned;
              Provenance.note (fun () ->
                  {
                    Provenance.tier = tier_name;
                    design;
                    cost;
                    downtime = None;
                    execution_time = None;
                    fate = Over_cost_cap { excess = Money.sub cost cap };
                  })
          | Some _ | None -> (
              (* Only genuine model rejections are caught and counted
                 ({!Aved_avail.Tier_model.Rejected}); an
                 [Invalid_argument] here is a programming error and
                 propagates. *)
              match
                let model =
                  Eval_cache.model entry ~n_active ~n_spare ~demand:None
                in
                let verdict =
                  match prune with
                  | None -> None
                  | Some (p : Bound_pruning.prune) -> p ~design ~cost ~model
                in
                match verdict with
                | Some certificate -> `Pruned certificate
                | None ->
                    let execution_time =
                      match config.Search_config.engine with
                      | Avail.Evaluate.Analytic | Avail.Evaluate.Memoized _ ->
                          let downtime_fraction =
                            Eval_cache.downtime_fraction entry
                              config.Search_config.engine model
                          in
                          Avail.Evaluate.job_completion_time_of
                            ~downtime_fraction model ~job_size
                      | Avail.Evaluate.Exact _ | Avail.Evaluate.Monte_carlo _
                        ->
                          Avail.Evaluate.job_completion_time
                            config.Search_config.engine model ~job_size
                    in
                    `Candidate { design; model; cost; execution_time }
              with
              | `Candidate candidate ->
                  incr evaluated;
                  emit candidate
              | `Pruned certificate ->
                  incr bound_pruned;
                  Provenance.note (fun () ->
                      {
                        Provenance.tier = tier_name;
                        design;
                        cost;
                        downtime = None;
                        execution_time = None;
                        fate = Pruned_by_bound { certificate = certificate () };
                      })
              | exception Avail.Tier_model.Rejected reason ->
                  incr rejected;
                  Provenance.note (fun () ->
                      {
                        Provenance.tier = tier_name;
                        design;
                        cost;
                        downtime = None;
                        execution_time = None;
                        fate = Rejected_by_model { reason };
                      })))
        (if n_spare = 0 || not config.Search_config.explore_spare_modes then
           [ ([], base_entry) ]
         else Eval_cache.spare_entries base_entry))
    splits;
  Search_metrics.flush ~tier_name ~generated:!generated ~evaluated:!evaluated
    ~pruned:!pruned ~rejected:!rejected ~bound_pruned:!bound_pruned ();
  !min_cost

let eval_settings config ~tier_name ~option ~job_size ~splits ?cost_cap ?prune
    pair =
  let candidates = ref [] in
  let min_cost =
    eval_settings_fold config ~tier_name ~option ~job_size ~splits ?cost_cap
      ?prune
      ~emit:(fun candidate -> candidates := candidate :: !candidates)
      pair
  in
  (List.rev !candidates, min_cost)

(* All designs of one option at one total. The mechanism-settings grid
   is the dominant fan-out of the job search (e.g. the checkpoint
   interval × storage-location grid of the paper's scientific example),
   so that is the dimension fanned out over the pool; the merge is by
   settings index, keeping the candidate order deterministic. *)
let enumerate_and_min ?pool config infra ~tier_name
    ~(option : Model.Service.resource_option) ~job_size ~max_time ~total
    ?cost_cap ?prune () =
  let splits = feasible_splits config ~option ~job_size ~max_time ~total in
  if splits = [] then ([], None)
  else begin
  let pairs = Eval_cache.settings_entries ~infra ~tier_name ~option in
  let eval pair =
    eval_settings config ~tier_name ~option ~job_size ~splits ?cost_cap ?prune
      pair
  in
  let per_settings =
    match pool with
    | Some pool when Pool.jobs pool > 1 && List.length pairs > 1 ->
        (* Cache entries are domain-local: ship only the settings and
           let each worker resolve them in its own cache. *)
        Pool.map pool
          (fun (settings, _) ->
            eval
              ( settings,
                Eval_cache.entry ~infra ~tier_name ~option ~settings
                  ~spare_active:[] ))
          pairs
    | Some _ | None -> List.map eval pairs
  in
  let candidates = List.concat_map fst per_settings in
  let min_cost =
    List.fold_left
      (fun acc (_, m) ->
        match (acc, m) with
        | None, m | m, None -> m
        | Some a, Some b -> Some (Money.min a b))
      None per_settings
  in
  (candidates, min_cost)
  end

let enumerate_total ?pool config infra ~tier_name ~option ~job_size ~max_time
    ~total ?cost_cap ?prune () =
  fst
    (enumerate_and_min ?pool config infra ~tier_name ~option ~job_size
       ~max_time ~total ?cost_cap ?prune ())

(* As {!enumerate_and_min}, but reduced on the fly to what the optimal
   search consumes — the best feasible candidate, the fastest execution
   time over every evaluated candidate, and the minimum cost — instead
   of materializing one candidate list per total only to fold it away.
   The reduction visits candidates in the same order as the list path
   and keeps the earlier candidate on [compare_total] ties, so the
   selected design is identical. Used when provenance is off; the
   explain path wants the full lists. *)
let enumerate_reduced ?pool config infra ~tier_name
    ~(option : Model.Service.resource_option) ~job_size ~max_time ~total
    ?cost_cap ?prune () =
  let splits = feasible_splits config ~option ~job_size ~max_time ~total in
  if splits = [] then (None, Float.infinity, None)
  else begin
    let pairs = Eval_cache.settings_entries ~infra ~tier_name ~option in
    let eval pair =
      let best = ref None in
      let min_time = ref Float.infinity in
      let emit c =
        let t = Duration.seconds c.execution_time in
        if t < !min_time then min_time := t;
        if Duration.compare c.execution_time max_time <= 0 then
          match !best with
          | Some b when not (better c b) -> ()
          | Some _ | None -> best := Some c
      in
      let min_cost =
        eval_settings_fold config ~tier_name ~option ~job_size ~splits
          ?cost_cap ?prune ~emit pair
      in
      (!best, !min_time, min_cost)
    in
    let per_settings =
      match pool with
      | Some pool when Pool.jobs pool > 1 && List.length pairs > 1 ->
          Pool.map pool
            (fun (settings, _) ->
              eval
                ( settings,
                  Eval_cache.entry ~infra ~tier_name ~option ~settings
                    ~spare_active:[] ))
            pairs
      | Some _ | None -> List.map eval pairs
    in
    (* Merge in settings order with the same tie rule as the flat
       iteration, so parallel completion order cannot change the
       result. *)
    List.fold_left
      (fun (best, min_time, min_cost) (b, t, m) ->
        let best =
          match (best, b) with
          | None, b -> b
          | best, None -> best
          | Some incumbent, Some challenger ->
              if better challenger incumbent then Some challenger
              else Some incumbent
        in
        let min_cost =
          match (min_cost, m) with
          | None, m | m, None -> m
          | Some a, Some b -> Some (Money.min a b)
        in
        (best, Float.min min_time t, min_cost))
      (None, Float.infinity, None)
      per_settings
  end

let start_total ~(option : Model.Service.resource_option) ~job_size ~max_time =
  List.find_opt
    (fun n -> feasible_n ~option ~job_size ~max_time n)
    (Model.Int_range.to_list option.n_active)

let option_limit config (option : Model.Service.resource_option) =
  Stdlib.min config.Search_config.max_total_resources
    (Model.Int_range.max_value option.n_active
   + config.Search_config.max_spares)

(* Branch-local search of one resource option; mirrors
   {!Tier_search.search_option}. The [shared] incumbent only tightens
   the evaluation cap below the branch-local best — it skips
   availability evaluations that provably cannot win, without touching
   the branch's stopping logic. *)
let search_option ?pool ?shared config infra ~tier_name ~option ~job_size
    ~max_time () =
  Telemetry.Counter.incr Search_metrics.options_searched;
  match start_total ~option ~job_size ~max_time with
  | None -> None
  | Some start ->
      let limit = option_limit config option in
      let bound_analyzer =
        Bound_pruning.analyzer config ~infra ~tier_name ~option
      in
      let max_time_hours = Duration.hours max_time in
      let best = ref None in
      let previous_best_time = ref Float.infinity in
      let degradations = ref 0 in
      let stop = ref false in
      let total = ref start in
      while (not !stop) && !total <= limit do
        Telemetry.Counter.incr Search_metrics.totals_scanned;
        let cost_cap =
          match !best with
          | None -> None
          | Some b ->
              let cap = b.cost in
              Some
                (match shared with
                | Some inc ->
                    let bound = Incumbent.get inc in
                    if bound < Money.to_float cap then begin
                      Telemetry.Counter.incr
                        Search_metrics.incumbent_cap_tightened;
                      Money.of_float bound
                    end
                    else cap
                | None -> cap)
        in
        (* Time-budget pruning only in iterations that START with an
           incumbent: the no-incumbent stopping rule keys on the best
           execution time over ALL candidates, which pruning would
           perturb; with an incumbent, stopping uses only
           [min_cost_all], which counts pruned designs too. *)
        let prune =
          match (bound_analyzer, !best) with
          | Some an, Some _ ->
              Some (Bound_pruning.job_time_prune an ~job_size ~max_time_hours)
          | _ -> None
        in
        let candidates, min_time_all, min_cost_all =
          if Provenance.enabled () then
            let candidates, min_cost_all =
              enumerate_and_min ?pool config infra ~tier_name ~option
                ~job_size ~max_time ~total:!total ?cost_cap ?prune ()
            in
            let min_time_all =
              List.fold_left
                (fun acc c ->
                  Float.min acc (Duration.seconds c.execution_time))
                Float.infinity candidates
            in
            (candidates, min_time_all, min_cost_all)
          else
            let best_here, min_time_all, min_cost_all =
              enumerate_reduced ?pool config infra ~tier_name ~option
                ~job_size ~max_time ~total:!total ?cost_cap ?prune ()
            in
            ( (match best_here with Some c -> [ c ] | None -> []),
              min_time_all,
              min_cost_all )
        in
        let feasible =
          List.filter
            (fun c -> Duration.compare c.execution_time max_time <= 0)
            candidates
        in
        if Provenance.enabled () then
          List.iter
            (fun c ->
              if Duration.compare c.execution_time max_time > 0 then
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c
                      (Over_downtime_budget
                         {
                           excess = Duration.sub c.execution_time max_time;
                         })))
            candidates;
        List.iter
          (fun c ->
            match !best with
            | Some b when not (better c b) ->
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c
                      (Dominated { by = Provenance.describe b.design }))
            | Some _ | None ->
                Option.iter
                  (fun b ->
                    Provenance.note (fun () ->
                        provenance_record ~tier:tier_name b
                          (Dominated { by = Provenance.describe c.design })))
                  !best;
                best := Some c;
                Provenance.note (fun () ->
                    provenance_record ~tier:tier_name c Incumbent);
                Option.iter
                  (fun inc -> Incumbent.propose inc (Money.to_float c.cost))
                  shared)
          feasible;
        (match !best with
        | Some b -> (
            match min_cost_all with
            | None -> stop := true
            | Some m -> if Money.(b.cost <= m) then stop := true)
        | None ->
            let best_time_here = min_time_all in
            if best_time_here >= !previous_best_time then begin
              incr degradations;
              if !degradations >= 2 then stop := true
            end
            else degradations := 0;
            previous_best_time := best_time_here);
        incr total
      done;
      !best

let with_pool ?pool config f =
  match pool with
  | Some pool -> f pool
  | None -> Pool.run ~jobs:config.Search_config.jobs f

let merge_best results =
  List.fold_left
    (fun acc r ->
      match (acc, r) with
      | None, r | r, None -> r
      | Some a, Some b -> if better b a then Some b else Some a)
    None results

let optimal ?pool config infra ~(tier : Model.Service.tier) ~job_size
    ~max_time =
  Telemetry.with_span "search.job.optimal" @@ fun () ->
  with_pool ?pool config @@ fun pool ->
  let shared = Incumbent.create () in
  let results =
    Pool.map pool
      (fun option ->
        let body () =
          search_option ~pool ~shared config infra
            ~tier_name:tier.tier_name ~option ~job_size ~max_time ()
        in
        if Telemetry.enabled () then
          Telemetry.with_span ("search.option:" ^ option.resource) body
        else body ())
      tier.options
  in
  let best = merge_best results in
  (match best with
  | Some winner when Provenance.enabled () ->
      List.iter
        (fun result ->
          match result with
          | Some b when b != winner ->
              Provenance.note (fun () ->
                  provenance_record ~tier:tier.tier_name b
                    (Dominated { by = Provenance.describe winner.design }))
          | Some _ | None -> ())
        results
  | Some _ | None -> ());
  best

let frontier ?pool config infra ~(tier : Model.Service.tier) ~job_size
    ~max_time =
  Telemetry.with_span "search.job.frontier" @@ fun () ->
  with_pool ?pool config @@ fun pool ->
  let tasks =
    List.concat_map
      (fun (option : Model.Service.resource_option) ->
        match start_total ~option ~job_size ~max_time with
        | None -> []
        | Some start ->
            let limit = option_limit config option in
            let limit =
              (* The frontier sweep is bounded like the optimal search:
                 a window of extras beyond the first feasible count. *)
              Stdlib.min limit
                (start + config.Search_config.max_extra_resources
               + config.Search_config.max_spares)
            in
            List.init
              (Stdlib.max 0 (limit - start + 1))
              (fun i -> (option, start + i)))
      tier.options
  in
  let candidates =
    List.concat
      (Pool.map pool
         (fun ((option : Model.Service.resource_option), total) ->
           enumerate_total config infra ~tier_name:tier.tier_name ~option
             ~job_size ~max_time ~total ())
         tasks)
  in
  let feasible =
    List.filter
      (fun c -> Duration.compare c.execution_time max_time <= 0)
      candidates
  in
  let sorted = List.sort compare_total feasible in
  let rec scan best_time acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let t = Duration.seconds c.execution_time in
        if t < best_time then scan t (c :: acc) rest
        else scan best_time acc rest
  in
  let front = scan Float.infinity [] sorted in
  Search_metrics.observe_frontier (List.length front);
  front

let pp_candidate ppf c =
  Format.fprintf ppf "%a | cost %a/yr | exec %.2f h"
    Model.Design.pp_tier c.design Money.pp c.cost
    (Duration.hours c.execution_time)
