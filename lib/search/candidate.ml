module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Design = Aved_model.Design
module Mechanism = Aved_model.Mechanism
module Availability = Aved_reliability.Availability

type t = {
  design : Design.tier_design;
  model : Aved_avail.Tier_model.t;
  cost : Money.t;
  downtime_fraction : float;
}

let downtime t = Duration.of_years t.downtime_fraction
let availability t = Availability.of_fraction (1. -. t.downtime_fraction)
let nines t = Availability.nines (availability t)
let pp_nines ppf t = Availability.pp_nines ppf (availability t)

let compare_total a b =
  match Money.compare a.cost b.cost with
  | 0 -> (
      match Float.compare a.downtime_fraction b.downtime_fraction with
      | 0 -> Design.compare_tier a.design b.design
      | c -> c)
  | c -> c

let dominates a b =
  Money.(a.cost <= b.cost)
  && a.downtime_fraction <= b.downtime_fraction
  && (Money.(a.cost < b.cost) || a.downtime_fraction < b.downtime_fraction)

let pareto candidates =
  let sorted =
    List.sort
      (fun a b ->
        match Money.compare a.cost b.cost with
        | 0 -> Float.compare a.downtime_fraction b.downtime_fraction
        | c -> c)
      candidates
  in
  (* Scan by increasing cost, keeping points that strictly improve
     downtime over everything cheaper. *)
  let rec scan best_downtime acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if c.downtime_fraction < best_downtime then
          scan c.downtime_fraction (c :: acc) rest
        else scan best_downtime acc rest
  in
  scan Float.infinity [] sorted

let family t ~n_min_nominal =
  let d = t.design in
  let enum_settings =
    List.concat_map
      (fun (_, setting) ->
        List.filter_map
          (fun (_, value) ->
            match value with
            | Mechanism.Enum_value v -> Some v
            | Mechanism.Duration_value _ -> None)
          setting)
      d.Design.mechanism_settings
  in
  let parts =
    (d.Design.resource :: enum_settings)
    @ [
        string_of_int (d.Design.n_active - n_min_nominal);
        string_of_int d.Design.n_spare;
      ]
  in
  "(" ^ String.concat ", " parts ^ ")"

let pp ppf t =
  Format.fprintf ppf "%a | cost %a/yr | downtime %.2f min/yr"
    Design.pp_tier t.design Money.pp t.cost
    (Duration.minutes (downtime t))
