(** Per-tier design-space search for enterprise services (paper §4.1).

    For each resource option of a tier, the search starts from the
    minimum number of resources that meets the performance requirement
    with no failures and grows the total count one resource at a time.
    At each count it enumerates every split into active and spare
    resources, every spare operational-mode assignment, and every
    availability-mechanism configuration; costs are evaluated first and
    designs strictly costlier than the incumbent are rejected without
    evaluating availability. The search for an option stops when every
    design at the current count costs at least as much as the
    incumbent, or — when no feasible design has been found — once
    growing the count stops improving the best achievable downtime.

    With [config.jobs > 1] the resource options (and, within an
    option, the mechanism-settings combinations) are searched on a
    domain pool; the result is bit-identical to the sequential search
    because candidates are ranked under the total order
    {!Candidate.compare_total} and cross-branch pruning uses only
    sound cost bounds (see {!Aved_parallel.Incumbent}). *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

val settings_product :
  Aved_model.Infrastructure.t ->
  Aved_model.Resource.t ->
  (string * Aved_model.Mechanism.setting) list list
(** Every combination of settings of the mechanisms the resource
    references. [[[]]] when it references none. *)

val enumerate_total :
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier_name:string ->
  option:Aved_model.Service.resource_option ->
  demand:float ->
  total:int ->
  ?cost_cap:Money.t ->
  ?prune:Bound_pruning.prune ->
  unit ->
  Candidate.t list
(** All evaluated candidates for one resource option using exactly
    [total] resources. Designs whose cost exceeds [cost_cap] are
    skipped without availability evaluation (equal cost is kept, so
    ties can still resolve toward lower downtime); designs [prune]
    certifies as unable to win are skipped likewise, each noted with
    its certificate. Respects the config caps (spares, extras, spare
    modes). *)

val option_minimum :
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list list ->
  demand:float ->
  int option
(** The smallest resource count at which the option can meet [demand]
    under at least one mechanism configuration. *)

val optimal :
  ?pool:Aved_parallel.Pool.t ->
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  demand:float ->
  max_downtime:Duration.t ->
  Candidate.t option
(** The minimum-cost design of the tier meeting both requirements
    (ties broken toward lower downtime, then
    {!Aved_model.Design.compare_tier}), or [None]. Runs on [pool] when
    given, otherwise on a fresh pool of [config.jobs] domains. *)

val frontier :
  ?pool:Aved_parallel.Pool.t ->
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  demand:float ->
  Candidate.t list
(** The (cost, downtime) Pareto frontier of the tier at the given
    demand, over all options, counts within the config caps, splits,
    spare modes and mechanism settings. Sorted by increasing cost.
    Runs on [pool] when given, otherwise on a fresh pool of
    [config.jobs] domains. *)
