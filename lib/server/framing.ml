type t = {
  buf : Buffer.t;
  max_line_bytes : int;
  mutable overflowed : bool;
}

let create ?(max_line_bytes = 8 * 1024 * 1024) () =
  { buf = Buffer.create 512; max_line_bytes; overflowed = false }

let buffered t = Buffer.length t.buf

let feed t bytes ~len =
  if t.overflowed then Error "line too long"
  else begin
    Buffer.add_subbytes t.buf bytes 0 len;
    let data = Buffer.contents t.buf in
    let n = String.length data in
    (* Split out every complete line; keep the unterminated tail. *)
    let rec split acc start =
      match String.index_from_opt data start '\n' with
      | Some nl ->
          let line =
            (* Tolerate CRLF framing from naive clients. *)
            if nl > start && data.[nl - 1] = '\r' then
              String.sub data start (nl - start - 1)
            else String.sub data start (nl - start)
          in
          split (line :: acc) (nl + 1)
      | None -> (List.rev acc, start)
    in
    let lines, tail_start = split [] 0 in
    Buffer.clear t.buf;
    if tail_start < n then
      Buffer.add_substring t.buf data tail_start (n - tail_start);
    if Buffer.length t.buf > t.max_line_bytes then begin
      t.overflowed <- true;
      Error
        (Printf.sprintf "line exceeds %d bytes without a newline"
           t.max_line_bytes)
    end
    else Ok lines
  end
