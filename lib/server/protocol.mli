(** The wire protocol of [aved serve]: newline-delimited JSON.

    One request per line, one response line per request. See
    [PROTOCOL.md] at the repository root for the complete client-facing
    specification. A v2 request is

    {v
    {"schema_version":2,"id":7,"verb":"design","deadline_ms":2000,
     "params":{"infra_file":"infra.spec","service_file":"svc.spec",
               "load":1000,"downtime_minutes":100}}
    v}

    [schema_version] selects the response dialect per request:
    [1 .. {!Aved_api.Api.schema_version}] are accepted, anything else
    is rejected, and an absent version means v1 (the only clients that
    existed before negotiation). [id] is echoed verbatim in the
    response and defaults to [null]; [params] defaults to [{}]. A v2
    response is

    {v
    {"schema_version":2,"id":7,"ok":true,"coalesced":false,"result":{...}}
    {"schema_version":2,"id":7,"ok":false,
     "error":{"code":"check_error","message":"..."}}
    v}

    where [result] is exactly the versioned {!Aved_api.Api} encoding
    the one-shot CLI prints for the same request — byte-identical once
    re-serialized, which the smoke test asserts. v1 requests get
    byte-identical v1 envelopes: no [coalesced] field and the legacy
    hyphenated error-code strings. *)

module Json = Aved_explain.Json

type verb =
  | Design
  | Frontier
  | Explain
  | Check
  | Health
  | Stats
  | Metrics
  | Trace  (** Fetch a completed request's span tree by trace id. *)

val verb_to_string : verb -> string
val verb_of_string : string -> verb option
val all_verbs : verb list

type request = {
  version : int;
      (** Negotiated schema version, [1 .. Api.schema_version]; every
          response to this request is rendered in this dialect. *)
  id : Json.t;  (** Echoed verbatim; [Null] when the client sent none. *)
  verb : verb;
  params : (string * Json.t) list;
  deadline_ms : float option;
      (** Time budget in milliseconds from admission to dispatch. *)
}

val request_of_line : string -> (request, int * string) result
(** Parse one request line. The error carries the schema version the
    error envelope should be rendered in (best guess — v1 for
    malformed JSON) alongside the message. *)

val request_line :
  ?version:int ->
  ?id:Json.t ->
  ?deadline_ms:float ->
  verb ->
  (string * Json.t) list ->
  string
(** Client-side builder (the bench and tests): one serialized request
    line, newline not included. [version] defaults to the current
    {!Aved_api.Api.schema_version}. *)

val coalesce_key : request -> string option
(** Content-hash identity for request coalescing: [Some key] for the
    work verbs (design/frontier/explain/check) where two requests with
    equal keys are guaranteed the same result — the key hashes the
    verb plus the params with object keys recursively sorted, so field
    order does not defeat coalescing. [None] for health/stats/metrics/
    trace, whose answers are time-varying. The client [id] and
    [deadline_ms] are excluded — they affect the envelope, not the
    result — but the negotiated [schema_version] is part of the key,
    since the shared result body is rendered in the leader's
    dialect. *)

type error_code =
  | Bad_request  (** Malformed JSON, unknown verb, bad params. *)
  | Overloaded  (** Shed: the admission queue was full. *)
  | Deadline_exceeded
  | User_error  (** Spec errors, failed check gate, bad requirements. *)
  | Shutting_down  (** Received while draining. *)
  | Internal

val error_code_to_string : ?version:int -> error_code -> string
(** The stable wire string for a code in the given dialect (default:
    current). v1 keeps the legacy hyphenated strings ([bad-request],
    [user-error], [deadline-exceeded], [shutting-down], ...); v2 is
    the unified five-code taxonomy [bad_request] / [check_error] /
    [overloaded] / [deadline] / [internal], with [Shutting_down]
    folded into [overloaded]. *)

val error_code_of_string : string -> error_code option
(** Decode a wire code string from either dialect — the client-side
    inverse of {!error_code_to_string}. Because v2 folds
    [Shutting_down] into [overloaded], decoding is not injective:
    ["overloaded"] yields {!Overloaded}. *)

val ok_response :
  ?version:int -> ?trace_id:string -> ?coalesced:bool -> id:Json.t -> Json.t ->
  string
(** Serialized success envelope (no trailing newline). [trace_id] is
    echoed as a top-level field when the server knows it. v2 envelopes
    carry [coalesced] (default [false]) — [true] when this response
    was broadcast from another request's computation; v1 envelopes
    omit the field to stay byte-identical to earlier builds. *)

val ok_response_rendered :
  ?version:int -> ?trace_id:string -> ?coalesced:bool -> id:Json.t -> string ->
  string
(** {!ok_response} over an already-serialized result body — byte-for-
    byte the same envelope. A coalescing broadcast serializes the
    shared result once and wraps it per waiter with only the cheap
    per-waiter fields (id, trace id, [coalesced]). *)

val error_response :
  ?version:int -> ?trace_id:string -> id:Json.t -> error_code -> string ->
  string
(** Like {!ok_response} for the error envelope — shed, bad-request and
    user-error responses carry the trace id too, so failures correlate
    with [--log] records and fetched traces. *)

(** Client-side view of a parsed response envelope. *)
type response = {
  response_id : Json.t;
  response_trace_id : string option;
      (** The server-assigned trace id, when the envelope carried one. *)
  response_coalesced : bool option;
      (** v2 ok envelopes only; [None] on v1 or error envelopes. *)
  outcome : (Json.t, error_code option * string) result;
      (** [Ok result], or [Error (code, message)] ([None] for an
          unrecognized code string). Both the v1 and v2 code dialects
          decode. *)
}

val response_of_line : string -> (response, string) result
