(** The wire protocol of [aved serve]: newline-delimited JSON.

    One request per line, one response line per request. A request is

    {v
    {"schema_version":1,"id":7,"verb":"design","deadline_ms":2000,
     "params":{"infra_file":"infra.spec","service_file":"svc.spec",
               "load":1000,"downtime_minutes":100}}
    v}

    [schema_version] and [deadline_ms] are optional ([schema_version]
    must equal {!Aved_api.Api.schema_version} when present); [id] is
    echoed verbatim in the response and defaults to [null]; [params]
    defaults to [{}]. A response is

    {v
    {"schema_version":1,"id":7,"ok":true,"result":{...}}
    {"schema_version":1,"id":7,"ok":false,
     "error":{"code":"user-error","message":"..."}}
    v}

    where [result] is exactly the versioned {!Aved_api.Api} encoding
    the one-shot CLI prints for the same request — byte-identical once
    re-serialized, which the smoke test asserts. *)

module Json = Aved_explain.Json

type verb =
  | Design
  | Frontier
  | Explain
  | Check
  | Health
  | Stats
  | Metrics
  | Trace  (** Fetch a completed request's span tree by trace id. *)

val verb_to_string : verb -> string
val verb_of_string : string -> verb option
val all_verbs : verb list

type request = {
  id : Json.t;  (** Echoed verbatim; [Null] when the client sent none. *)
  verb : verb;
  params : (string * Json.t) list;
  deadline_ms : float option;
      (** Time budget in milliseconds from admission to dispatch. *)
}

val request_of_line : string -> (request, string) result

val request_line :
  ?id:Json.t -> ?deadline_ms:float -> verb -> (string * Json.t) list -> string
(** Client-side builder (the bench and tests): one serialized request
    line, newline not included. *)

type error_code =
  | Bad_request  (** Malformed JSON, unknown verb, bad params. *)
  | Overloaded  (** Shed: the admission queue was full. *)
  | Deadline_exceeded
  | User_error  (** Spec errors, failed check gate, bad requirements. *)
  | Shutting_down  (** Received while draining. *)
  | Internal

val error_code_to_string : error_code -> string

val ok_response : ?trace_id:string -> id:Json.t -> Json.t -> string
(** Serialized success envelope (no trailing newline). [trace_id] is
    echoed as a top-level field when the server knows it. *)

val error_response :
  ?trace_id:string -> id:Json.t -> error_code -> string -> string
(** Like {!ok_response} for the error envelope — shed, bad-request and
    user-error responses carry the trace id too, so failures correlate
    with [--log] records and fetched traces. *)

(** Client-side view of a parsed response envelope. *)
type response = {
  response_id : Json.t;
  response_trace_id : string option;
      (** The server-assigned trace id, when the envelope carried one. *)
  outcome : (Json.t, error_code option * string) result;
      (** [Ok result], or [Error (code, message)] ([None] for an
          unrecognized code string). *)
}

val response_of_line : string -> (response, string) result
