type ('w, 'r) t = {
  mutex : Mutex.t;
  table : (string, 'w list ref) Hashtbl.t;
      (* key -> waiters attached so far, newest first. *)
}

let create () = { mutex = Mutex.create (); table = Hashtbl.create 64 }

let claim t ~key ~waiter =
  Mutex.lock t.mutex;
  let outcome =
    match Hashtbl.find_opt t.table key with
    | Some waiters ->
        waiters := waiter :: !waiters;
        `Attached
    | None ->
        Hashtbl.add t.table key (ref []);
        `Leader
  in
  Mutex.unlock t.mutex;
  outcome

let complete t ~key ~result ~broadcast =
  Mutex.lock t.mutex;
  let waiters =
    match Hashtbl.find_opt t.table key with
    | Some waiters ->
        Hashtbl.remove t.table key;
        List.rev !waiters
    | None -> []
  in
  Mutex.unlock t.mutex;
  (* Broadcast outside the lock: rendering and socket writes must not
     serialize unrelated claims. *)
  List.iter (fun w -> broadcast w result) waiters;
  List.length waiters

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
