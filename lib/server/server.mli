(** The [aved serve] daemon: a long-running design service answering
    {!Protocol} requests over a Unix-domain or TCP socket from warm
    state.

    {2 Architecture}

    One {e event loop} (the thread calling {!run}) owns every socket:
    it accepts non-blocking connections, reads ready fds into
    per-connection {!Framing} buffers, parses complete lines, and
    admits requests to a bounded queue ({!Aved_parallel.Bounded_queue}).
    Responses are enqueued into per-connection write buffers and
    flushed when the fd is writable, so an idle connection costs a
    buffer and a readiness entry instead of a thread. Admission never
    blocks: when the queue is full the request is shed with an
    explicit [overloaded] error response, so a burst degrades into
    visible backpressure rather than unbounded buffering. A fixed set
    of {e dispatcher threads} dequeues requests and answers them on a
    single shared {!Aved_parallel.Pool} of search domains.

    {2 Coalescing}

    Work requests (design/frontier/explain/check) carry a content-hash
    identity ({!Protocol.coalesce_key}). When a request's key matches
    a computation already in flight, it {e attaches} as a waiter
    ({!Inflight}) instead of being queued: the leader's dispatcher
    broadcasts the shared verdict — success or error — to every
    waiter, each wrapped in its own envelope (own [id], own trace id,
    [coalesced:true] on v2). A thundering herd of N identical requests
    runs one search. Disable with [coalesce = false].

    {2 Backpressure}

    A client that stops reading accumulates a response backlog: past
    256 KiB the loop stops reading its socket (so it cannot submit
    further work), and a backlog making no write progress for
    [send_timeout_s] (or exceeding 8 MiB) drops the connection —
    a slow reader cannot wedge a dispatcher or the loop.

    Warm state shared by every request: the domain pool, one bounded
    LRU availability memo ({!Aved_avail.Memo}), a content-hash cache of
    parsed specification pairs ({!Spec_cache}), and a telemetry
    registry whose counters and histograms the [stats] verb reports.

    {2 Deadlines}

    A request may carry ["deadline_ms"], a queueing budget: a request
    still queued when its budget lapses is answered with a deadline
    error instead of being executed. The deadline bounds time-in-queue,
    not execution — an admitted request runs to completion. Waiters
    share their leader's fate, deadline losses included.

    {2 Shutdown}

    {!stop} (or SIGTERM/SIGINT after {!install_signal_handlers})
    initiates a graceful drain: the listener closes, new requests are
    answered with [shutting-down] (late twins may still attach to
    in-flight computations), every request already admitted is
    executed, answered and broadcast, pending response bytes flush,
    then connections close and {!run} returns. A stalled client cannot
    hold shutdown hostage: the grace period is bounded by
    [send_timeout_s] plus one second.

    {2 Parity}

    Results are byte-identical to the one-shot CLI: handlers render
    through the same {!Aved_api.Api} encoders the [--json] flags use
    at the request's negotiated schema version, and the shared memo is
    bit-identical to the unmemoized engine. *)

type transport = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  transport : transport;
  jobs : int;  (** Domains of the shared search pool. *)
  dispatchers : int;  (** Request worker threads. *)
  queue_capacity : int;  (** Admission queue bound. *)
  max_conns : int;
      (** Concurrent connection bound (within [1, 1000] — the event
          loop multiplexes with [Unix.select], whose FD_SETSIZE is
          1024). Connections over the limit are answered with one
          [overloaded] envelope and closed
          ([server.connections.rejected]). *)
  coalesce : bool;
      (** Attach identical in-flight work requests to one computation
          ([server.coalesced.*]); disable to force every request
          through its own search. *)
  default_deadline_ms : float option;
      (** Queueing budget applied when a request names none. *)
  memo_capacity : int;  (** Bound of the shared availability memo. *)
  span_capacity : int;
      (** Per-domain telemetry span retention ({!Aved_telemetry.Telemetry.create}). *)
  send_timeout_s : float;
      (** Write-stall bound: a connection whose response backlog makes
          no progress for this long is dropped
          ([server.connections.send_timeout]), instead of buffering
          without bound for a client that stopped reading. *)
  log_path : string option;
      (** Structured request log ([aved serve --log FILE]): one JSON
          object per request with trace id, per-stage timings and
          outcome, plus start/stop/snapshot events. [None] disables
          logging entirely. *)
  slo : Aved_obs.Slo.config;
      (** The daemon's own availability objective — target success
          rate, per-request latency budget, and rolling window —
          tracked continuously and exposed via [stats] and [metrics]
          (see {!Aved_obs.Slo}). *)
  trace_sample : float;
      (** Head-sampling rate in [0, 1]: the fraction of requests that
          get a full span tree (search, engine and solver spans with
          per-span CPU/allocation attribution), fetchable by trace id
          via the [trace] verb and [aved trace]. 0 disables tracing
          entirely — the cost is one atomic load per potential span. *)
  trace_ring : int;
      (** How many completed sampled traces the daemon retains for the
          [trace] verb; older ones are evicted
          ([server.trace.ring.evictions]). *)
  trace_spans : int;
      (** Per-trace span bound; overflow is dropped subtree-first and
          counted ([server.trace.spans.dropped]). *)
}

val default_config : transport -> config
(** [jobs = Domain.recommended_domain_count ()], 2 dispatchers, a
    128-request queue, 900 connections, coalescing on, no default
    deadline, {!Aved_avail.Memo.default_capacity} memo entries, 4096
    retained spans per domain, a 10 s send timeout, no request log,
    {!Aved_obs.Slo.default_config} (99.9% of work requests within
    50 ms over a 5-minute window), tracing off ([trace_sample = 0.])
    with a 256-trace ring and 2048 spans per trace. *)

type t

val create : config -> t
(** Binds and listens on the transport, spawns the dispatcher threads
    and installs the server's telemetry registry. Raises
    [Unix.Unix_error] when the address cannot be bound,
    [Invalid_argument] on non-positive sizes or an out-of-range
    [max_conns], and [Failure] when a Unix-socket path is already
    served by a live daemon (an existing path is probed with a connect
    before being unlinked), when the SLO config is invalid, or when
    the request log cannot be opened. *)

val run : t -> unit
(** The event loop. Returns after {!stop}, once every admitted request
    has been answered and every thread joined. Call from the thread
    that owns the server's lifetime (the CLI's main thread, or a
    dedicated thread when embedding, as the bench does). *)

val stop : t -> unit
(** Initiate graceful drain. Thread-safe, idempotent, and safe to call
    from a signal handler (it sets a flag and taps the loop's wakeup
    pipe; {!run} notices within its 250 ms poll timeout even if the
    tap is lost). *)

val install_signal_handlers : t -> unit
(** Route SIGTERM and SIGINT to {!stop}, and SIGUSR1 to a full
    metrics/GC snapshot: the event loop notices the flag within its
    250 ms timeout and appends a ["snapshot"] record (the complete
    [stats] document) to the request log, or prints it to stderr when
    no log is configured. *)

val bound_port : t -> int option
(** The actually-bound TCP port — useful with [Tcp { port = 0 }] (the
    kernel picks); [None] for Unix-domain transports. *)
