(** Incremental newline-delimited framing for the event loop.

    A connection's reads arrive in arbitrary chunks — a request split
    across many 1-byte reads, or several pipelined requests in one
    64 KiB read. [feed] accumulates bytes and returns every complete
    line as it closes (newline stripped, CRLF tolerated), keeping the
    unterminated tail buffered for the next chunk.

    A bounded buffer protects the daemon from a client that streams
    bytes without ever sending a newline: once the partial line
    exceeds [max_line_bytes], [feed] returns [Error] — permanently,
    since the stream can no longer be re-synchronized — and the caller
    must answer bad-request and close the connection. *)

type t

val create : ?max_line_bytes:int -> unit -> t
(** [max_line_bytes] defaults to 8 MiB, matching the JSON parser's
    tolerance for large explain responses going the other way. *)

val feed : t -> Bytes.t -> len:int -> (string list, string) result
(** Append [len] bytes from the chunk and return the completed lines,
    in arrival order (possibly none). [Error] means the partial-line
    bound was exceeded: close the connection. *)

val buffered : t -> int
(** Bytes currently held for an incomplete line (tests/stats). *)
