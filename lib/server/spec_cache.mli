(** Content-hash cache of parsed and checked specification pairs.

    The serve daemon takes specification {e file paths} in requests,
    exactly like the one-shot CLI, so a request always reflects what is
    on disk. To answer from warm state it re-reads the bytes, hashes
    them, and reuses the parsed infrastructure/service pair and the
    static-check verdict when the content is unchanged — the expensive
    part (parsing, cross-validation, the checker's model construction)
    runs once per distinct content, not once per request.

    Lookups that fail to parse or cross-validate raise exactly what
    {!Aved_spec.Spec.load} raises (and are not cached), so the daemon
    reports the same one-line message the CLI prints. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of cached pairs (default 64); the
    table is reset wholesale when full — spec sets are tiny and churn
    is rare, so simplicity beats LRU here. *)

type loaded = {
  infra : Aved_model.Infrastructure.t;
  service : Aved_model.Service.t;
  check_errors : Aved_check.Diagnostic.t list;
      (** Error-severity diagnostics of [aved check] over the pair;
          empty when the specs pass the static gate. *)
}

val load : t -> infra_file:string -> service_file:string -> loaded
(** Raises {!Aved_spec.Spec.Error} or [Failure] on malformed
    specifications and [Sys_error] when a file cannot be read. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
