module Telemetry = Aved_telemetry.Telemetry

let hit_counter = Telemetry.Counter.make "server.spec_cache.hits"
let miss_counter = Telemetry.Counter.make "server.spec_cache.misses"

type key = {
  k_infra_file : string;
  k_service_file : string;
  k_infra_digest : Digest.t;
  k_service_digest : Digest.t;
}

type loaded = {
  infra : Aved_model.Infrastructure.t;
  service : Aved_model.Service.t;
  check_errors : Aved_check.Diagnostic.t list;
}

type t = {
  mutex : Mutex.t;
  table : (key, loaded) Hashtbl.t;
  capacity : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Spec_cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    capacity;
    hit_count = 0;
    miss_count = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Parse, cross-validate and check outside the lock: a slow parse must
   not stall dispatchers answering from warm content. The worst case is
   two threads racing the same miss and both computing — the results are
   equal, and the second [Hashtbl.replace] is harmless. *)
let load t ~infra_file ~service_file =
  let key =
    {
      k_infra_file = infra_file;
      k_service_file = service_file;
      k_infra_digest = Digest.file infra_file;
      k_service_digest = Digest.file service_file;
    }
  in
  match locked t (fun () -> Hashtbl.find_opt t.table key) with
  | Some loaded ->
      Telemetry.Counter.incr hit_counter;
      locked t (fun () -> t.hit_count <- t.hit_count + 1);
      loaded
  | None ->
      Telemetry.Counter.incr miss_counter;
      let infra, service = Aved_spec.Spec.load ~infra_file ~service_file in
      let check_errors =
        Aved_check.Check.check_files [ infra_file; service_file ]
        |> List.filter (fun (d : Aved_check.Diagnostic.t) ->
               d.severity = Aved_check.Diagnostic.Error)
      in
      let loaded = { infra; service; check_errors } in
      locked t (fun () ->
          t.miss_count <- t.miss_count + 1;
          if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
          Hashtbl.replace t.table key loaded);
      loaded

let length t = locked t (fun () -> Hashtbl.length t.table)
let hits t = locked t (fun () -> t.hit_count)
let misses t = locked t (fun () -> t.miss_count)
