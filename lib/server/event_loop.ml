(* A poll-shaped readiness reactor over [Unix.select].

   The stdlib has no portable poll/epoll binding and the project adds
   no dependencies, so select it is. select caps fds at FD_SETSIZE
   (1024 on Linux); [Server] enforces a max-connection limit well
   under that. The structural pieces — readiness sets in, ready lists
   out, a thread-safe wakeup — are poll-shaped, so swapping in a real
   poll binding later touches only this file. *)

type t = {
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutex : Mutex.t;
  mutable armed : bool;
      (* One pending wakeup byte is enough; don't write more. *)
  mutable closed : bool;
}

let create () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { wake_r; wake_w; mutex = Mutex.create (); armed = false; closed = false }

let wakeup t =
  Mutex.lock t.mutex;
  let need = (not t.armed) && not t.closed in
  if need then t.armed <- true;
  Mutex.unlock t.mutex;
  if need then
    try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF | EPIPE), _, _) -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec loop () =
    match Unix.read t.wake_r buf 0 64 with
    | 0 -> ()
    | _ -> loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  loop ();
  Mutex.lock t.mutex;
  t.armed <- false;
  Mutex.unlock t.mutex

let wait t ~read ~write ~timeout =
  let read = t.wake_r :: read in
  match Unix.select read write [] timeout with
  | readable, writable, _ ->
      let woken = List.memq t.wake_r readable in
      if woken then drain_wake t;
      (List.filter (fun fd -> fd != t.wake_r) readable, writable)
  | exception Unix.Unix_error (EINTR, _, _) -> ([], [])

let close t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
