module Json = Aved_explain.Json
module Json_parse = Aved_api.Json_parse
module Api = Aved_api.Api

type verb =
  | Design
  | Frontier
  | Explain
  | Check
  | Health
  | Stats
  | Metrics
  | Trace

let verb_to_string = function
  | Design -> "design"
  | Frontier -> "frontier"
  | Explain -> "explain"
  | Check -> "check"
  | Health -> "health"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Trace -> "trace"

let all_verbs =
  [ Design; Frontier; Explain; Check; Health; Stats; Metrics; Trace ]

let verb_of_string s =
  List.find_opt (fun v -> String.equal (verb_to_string v) s) all_verbs

type request = {
  version : int;
  id : Json.t;
  verb : verb;
  params : (string * Json.t) list;
  deadline_ms : float option;
}

let lookup name fields = List.assoc_opt name fields

(* A request that cannot be parsed still deserves an error envelope,
   and the envelope should speak the client's dialect when we can tell
   what that is. Malformed JSON and non-object lines default to v1 —
   the only clients that existed before negotiation — while an object
   carrying a recognizable v2 version gets v2 error bytes. *)
let guess_version fields =
  match lookup "schema_version" fields with
  | Some (Json.Int v) when v >= Api.min_schema_version && v <= Api.schema_version
    ->
      v
  | Some _ -> Api.schema_version
  | None -> 1

let request_of_line line =
  match Json_parse.of_string line with
  | Error msg -> Error (1, Printf.sprintf "malformed JSON: %s" msg)
  | Ok (Json.Obj fields) -> (
      let err msg = Error (guess_version fields, msg) in
      match lookup "schema_version" fields with
      | Some (Json.Int v)
        when v < Api.min_schema_version || v > Api.schema_version ->
          err
            (Printf.sprintf "unsupported schema_version %d (this build speaks %d..%d)"
               v Api.min_schema_version Api.schema_version)
      | Some (Json.Int _) | None -> (
          let version = guess_version fields in
          let id = Option.value (lookup "id" fields) ~default:Json.Null in
          let deadline_ms =
            match lookup "deadline_ms" fields with
            | Some (Json.Int ms) -> Some (float_of_int ms)
            | Some (Json.Float ms) -> Some ms
            | _ -> None
          in
          let params =
            match lookup "params" fields with
            | Some (Json.Obj params) -> Some params
            | None -> Some []
            | Some _ -> None
          in
          match (lookup "verb" fields, params) with
          | None, _ -> err "missing \"verb\""
          | Some (Json.String v), Some params -> (
              match verb_of_string v with
              | Some verb -> Ok { version; id; verb; params; deadline_ms }
              | None -> err (Printf.sprintf "unknown verb %S" v))
          | _, None -> err "\"params\" must be an object"
          | Some _, _ -> err "\"verb\" must be a string")
      | Some _ -> err "\"schema_version\" must be an integer")
  | Ok _ -> Error (1, "request must be a JSON object")

let request_line ?(version = Api.schema_version) ?(id = Json.Null) ?deadline_ms
    verb params =
  let fields =
    [
      ("schema_version", Json.Int version);
      ("id", id);
      ("verb", Json.String (verb_to_string verb));
    ]
    @ (match deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Float ms) ]
      | None -> [])
    @ [ ("params", Json.Obj params) ]
  in
  Json.to_string (Json.Obj fields)

(* ------------------------------------------------------------------ *)
(* Coalescing keys *)

(* Canonical form: object keys sorted recursively, so two requests
   whose params differ only in field order hash identically. Arrays
   keep their order — element order is meaningful (e.g. tier lists). *)
let rec canonical = function
  | Json.Obj fields ->
      Json.Obj
        (List.sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, canonical v)) fields))
  | Json.List l -> Json.List (List.map canonical l)
  | other -> other

let coalesce_key req =
  match req.verb with
  | Design | Frontier | Explain | Check ->
      let body = Json.to_string (canonical (Json.Obj req.params)) in
      (* The negotiated version is part of the identity: the shared
         result body is rendered once, at the leader's version, so
         requests only coalesce within one dialect. *)
      Some
        (Printf.sprintf "v%d:%s:%s" req.version (verb_to_string req.verb)
           (Digest.to_hex (Digest.string body)))
  | Health | Stats | Metrics | Trace -> None

(* ------------------------------------------------------------------ *)
(* Error taxonomy *)

type error_code =
  | Bad_request
  | Overloaded
  | Deadline_exceeded
  | User_error
  | Shutting_down
  | Internal

(* Legacy v1 strings, frozen: v1 clients parse these exact bytes. *)
let error_code_to_v1_string = function
  | Bad_request -> "bad-request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | User_error -> "user-error"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

(* The v2 unified taxonomy: five stable code strings. [Shutting_down]
   folds into [overloaded] — both mean "retry elsewhere or later" and
   v2 clients need no finer distinction. *)
let error_code_to_v2_string = function
  | Bad_request -> "bad_request"
  | Overloaded | Shutting_down -> "overloaded"
  | Deadline_exceeded -> "deadline"
  | User_error -> "check_error"
  | Internal -> "internal"

let error_code_to_string ?(version = Api.schema_version) code =
  if version <= 1 then error_code_to_v1_string code
  else error_code_to_v2_string code

let all_error_codes =
  [ Bad_request; Overloaded; Deadline_exceeded; User_error; Shutting_down;
    Internal ]

(* Accepts both dialects, so one client parser handles either server
   generation. The v2 fold means "overloaded" decodes as [Overloaded]
   regardless of whether the server was shedding or draining. *)
let error_code_of_string s =
  match
    List.find_opt
      (fun c -> String.equal (error_code_to_v1_string c) s)
      all_error_codes
  with
  | Some c -> Some c
  | None ->
      List.find_opt
        (fun c -> String.equal (error_code_to_v2_string c) s)
        all_error_codes

(* The envelope carries the request's trace id on both success and
   error paths, so a client holding a slow or failed response can fetch
   the matching trace (when sampled) or grep the structured log. *)
let trace_field = function
  | None -> []
  | Some trace_id -> [ ("trace_id", Json.String trace_id) ]

(* The success envelope, spliced around an already-serialized result.
   This is what lets a coalescing broadcast render the shared (often
   kilobyte-scale) result body once and wrap it N times with only the
   per-waiter fields — the bytes are identical to serializing the full
   envelope as one JSON object, which {!ok_response} does through this
   same function. *)
let ok_response_rendered ?(version = Api.schema_version) ?trace_id
    ?(coalesced = false) ~id body =
  let buf = Buffer.create (String.length body + 96) in
  Buffer.add_string buf "{\"schema_version\":";
  Buffer.add_string buf (string_of_int version);
  Buffer.add_string buf ",\"id\":";
  Buffer.add_string buf (Json.to_string id);
  Buffer.add_string buf ",\"ok\":true";
  if version > 1 then begin
    Buffer.add_string buf ",\"coalesced\":";
    Buffer.add_string buf (if coalesced then "true" else "false")
  end;
  (match trace_id with
  | Some tid ->
      Buffer.add_string buf ",\"trace_id\":";
      Buffer.add_string buf (Json.to_string (Json.String tid))
  | None -> ());
  Buffer.add_string buf ",\"result\":";
  Buffer.add_string buf body;
  Buffer.add_char buf '}';
  Buffer.contents buf

let ok_response ?version ?trace_id ?coalesced ~id result =
  ok_response_rendered ?version ?trace_id ?coalesced ~id
    (Json.to_string result)

let error_response ?(version = Api.schema_version) ?trace_id ~id code message =
  Json.to_string
    (Json.Obj
       ([
          ("schema_version", Json.Int version);
          ("id", id);
          ("ok", Json.Bool false);
        ]
       @ trace_field trace_id
       @ [
           ( "error",
             Json.Obj
               [
                 ("code", Json.String (error_code_to_string ~version code));
                 ("message", Json.String message);
               ] );
         ]))

type response = {
  response_id : Json.t;
  response_trace_id : string option;
  response_coalesced : bool option;
  outcome : (Json.t, error_code option * string) result;
}

let response_of_line line =
  match Json_parse.of_string line with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok (Json.Obj fields) -> (
      let response_id =
        Option.value (lookup "id" fields) ~default:Json.Null
      in
      let response_trace_id =
        match lookup "trace_id" fields with
        | Some (Json.String s) -> Some s
        | Some _ | None -> None
      in
      let response_coalesced =
        match lookup "coalesced" fields with
        | Some (Json.Bool b) -> Some b
        | Some _ | None -> None
      in
      match (lookup "ok" fields, lookup "result" fields, lookup "error" fields)
      with
      | Some (Json.Bool true), Some result, _ ->
          Ok
            {
              response_id;
              response_trace_id;
              response_coalesced;
              outcome = Ok result;
            }
      | Some (Json.Bool false), _, Some (Json.Obj err) -> (
          match (lookup "code" err, lookup "message" err) with
          | Some (Json.String code), Some (Json.String message) ->
              Ok
                {
                  response_id;
                  response_trace_id;
                  response_coalesced;
                  outcome = Error (error_code_of_string code, message);
                }
          | _ -> Error "error object must carry string code and message")
      | Some (Json.Bool true), None, _ -> Error "ok response missing result"
      | Some (Json.Bool false), _, _ -> Error "error response missing error"
      | _ -> Error "response missing boolean \"ok\"")
  | Ok _ -> Error "response must be a JSON object"
