module Json = Aved_explain.Json
module Json_parse = Aved_api.Json_parse
module Api = Aved_api.Api

type verb =
  | Design
  | Frontier
  | Explain
  | Check
  | Health
  | Stats
  | Metrics
  | Trace

let verb_to_string = function
  | Design -> "design"
  | Frontier -> "frontier"
  | Explain -> "explain"
  | Check -> "check"
  | Health -> "health"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Trace -> "trace"

let all_verbs =
  [ Design; Frontier; Explain; Check; Health; Stats; Metrics; Trace ]

let verb_of_string s =
  List.find_opt (fun v -> String.equal (verb_to_string v) s) all_verbs

type request = {
  id : Json.t;
  verb : verb;
  params : (string * Json.t) list;
  deadline_ms : float option;
}

let lookup name fields = List.assoc_opt name fields

let request_of_line line =
  match Json_parse.of_string line with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok (Json.Obj fields) -> (
      match lookup "schema_version" fields with
      | Some (Json.Int v) when v <> Api.schema_version ->
          Error
            (Printf.sprintf "unsupported schema_version %d (expected %d)" v
               Api.schema_version)
      | Some (Json.Int _) | None -> (
          let id = Option.value (lookup "id" fields) ~default:Json.Null in
          let deadline_ms =
            match lookup "deadline_ms" fields with
            | Some (Json.Int ms) -> Some (float_of_int ms)
            | Some (Json.Float ms) -> Some ms
            | _ -> None
          in
          let params =
            match lookup "params" fields with
            | Some (Json.Obj params) -> Some params
            | None -> Some []
            | Some _ -> None
          in
          match (lookup "verb" fields, params) with
          | None, _ -> Error "missing \"verb\""
          | Some (Json.String v), Some params -> (
              match verb_of_string v with
              | Some verb -> Ok { id; verb; params; deadline_ms }
              | None -> Error (Printf.sprintf "unknown verb %S" v))
          | _, None -> Error "\"params\" must be an object"
          | Some _, _ -> Error "\"verb\" must be a string")
      | Some _ -> Error "\"schema_version\" must be an integer")
  | Ok _ -> Error "request must be a JSON object"

let request_line ?(id = Json.Null) ?deadline_ms verb params =
  let fields =
    [
      ("schema_version", Json.Int Api.schema_version);
      ("id", id);
      ("verb", Json.String (verb_to_string verb));
    ]
    @ (match deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Float ms) ]
      | None -> [])
    @ [ ("params", Json.Obj params) ]
  in
  Json.to_string (Json.Obj fields)

type error_code =
  | Bad_request
  | Overloaded
  | Deadline_exceeded
  | User_error
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | User_error -> "user-error"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

let all_error_codes =
  [ Bad_request; Overloaded; Deadline_exceeded; User_error; Shutting_down;
    Internal ]

let error_code_of_string s =
  List.find_opt (fun c -> String.equal (error_code_to_string c) s)
    all_error_codes

(* The envelope carries the request's trace id on both success and
   error paths, so a client holding a slow or failed response can fetch
   the matching trace (when sampled) or grep the structured log. *)
let trace_field = function
  | None -> []
  | Some trace_id -> [ ("trace_id", Json.String trace_id) ]

let ok_response ?trace_id ~id result =
  Json.to_string
    (Json.Obj
       ([
          ("schema_version", Json.Int Api.schema_version);
          ("id", id);
          ("ok", Json.Bool true);
        ]
       @ trace_field trace_id
       @ [ ("result", result) ]))

let error_response ?trace_id ~id code message =
  Json.to_string
    (Json.Obj
       ([
          ("schema_version", Json.Int Api.schema_version);
          ("id", id);
          ("ok", Json.Bool false);
        ]
       @ trace_field trace_id
       @ [
           ( "error",
             Json.Obj
               [
                 ("code", Json.String (error_code_to_string code));
                 ("message", Json.String message);
               ] );
         ]))

type response = {
  response_id : Json.t;
  response_trace_id : string option;
  outcome : (Json.t, error_code option * string) result;
}

let response_of_line line =
  match Json_parse.of_string line with
  | Error msg -> Error (Printf.sprintf "malformed JSON: %s" msg)
  | Ok (Json.Obj fields) -> (
      let response_id =
        Option.value (lookup "id" fields) ~default:Json.Null
      in
      let response_trace_id =
        match lookup "trace_id" fields with
        | Some (Json.String s) -> Some s
        | Some _ | None -> None
      in
      match (lookup "ok" fields, lookup "result" fields, lookup "error" fields)
      with
      | Some (Json.Bool true), Some result, _ ->
          Ok { response_id; response_trace_id; outcome = Ok result }
      | Some (Json.Bool false), _, Some (Json.Obj err) -> (
          match (lookup "code" err, lookup "message" err) with
          | Some (Json.String code), Some (Json.String message) ->
              Ok
                {
                  response_id;
                  response_trace_id;
                  outcome = Error (error_code_of_string code, message);
                }
          | _ -> Error "error object must carry string code and message")
      | Some (Json.Bool true), None, _ -> Error "ok response missing result"
      | Some (Json.Bool false), _, _ -> Error "error response missing error"
      | _ -> Error "response missing boolean \"ok\"")
  | Ok _ -> Error "response must be a JSON object"
