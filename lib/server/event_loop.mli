(** The serve daemon's readiness reactor.

    One thread (the event loop) blocks in {!wait} on the fds it is
    interested in; other threads (dispatchers finishing a request,
    signal-adjacent code) call {!wakeup} to make the current {!wait}
    return early so the loop notices new pending writes or a stop
    flag. Wakeup is a classic self-pipe: a byte written to an internal
    pipe whose read end is always in the select read set, coalesced so
    that any number of wakeups between two waits costs one byte.

    Built on [Unix.select], which caps file descriptors at FD_SETSIZE
    (1024): the server's [--max-conns] default stays safely under
    that bound. The interface is poll-shaped so a real poll/epoll
    binding can replace the implementation without touching callers. *)

type t

val create : unit -> t

val wait :
  t ->
  read:Unix.file_descr list ->
  write:Unix.file_descr list ->
  timeout:float ->
  Unix.file_descr list * Unix.file_descr list
(** Block until an fd is ready, the timeout elapses, or {!wakeup} is
    called; returns (readable, writable) with the internal pipe
    filtered out. Only the event-loop thread may call this. *)

val wakeup : t -> unit
(** Thread-safe: force the current (or next) {!wait} to return
    promptly. Idempotent between waits. *)

val close : t -> unit
(** Release the internal pipe. Idempotent. *)
