module Telemetry = Aved_telemetry.Telemetry
module Json = Aved_explain.Json
module Api = Aved_api.Api
module Model = Aved_model
module Duration = Aved_units.Duration
module Memo = Aved_avail.Memo
module Pool = Aved_parallel.Pool
module Bounded_queue = Aved_parallel.Bounded_queue
module Trace_id = Aved_obs.Trace_id
module Lifecycle = Aved_obs.Lifecycle
module Slo = Aved_obs.Slo
module Prometheus = Aved_obs.Prometheus
module Request_log = Aved_obs.Request_log
module Trace_store = Aved_obs.Trace_store
module Exemplars = Aved_obs.Exemplars
module Process_stats = Aved_obs.Process_stats

(* ------------------------------------------------------------------ *)
(* Metrics *)

let request_counters =
  List.map
    (fun v ->
      (v, Telemetry.Counter.make ("server.requests." ^ Protocol.verb_to_string v)))
    Protocol.all_verbs

let responses_ok = Telemetry.Counter.make "server.responses.ok"
let responses_error = Telemetry.Counter.make "server.responses.error"
let shed_counter = Telemetry.Counter.make "server.requests.shed"

let deadline_counter =
  Telemetry.Counter.make "server.requests.deadline_exceeded"

let connections_opened = Telemetry.Counter.make "server.connections.opened"
let connections_closed = Telemetry.Counter.make "server.connections.closed"

(* Accepted then refused because [--max-conns] live connections
   already existed: answered with one overloaded envelope and closed. *)
let connections_rejected = Telemetry.Counter.make "server.connections.rejected"

(* Closed because the client stopped reading: its response backlog made
   no progress for the send timeout (or exceeded the pending bound). *)
let connections_stalled =
  Telemetry.Counter.make "server.connections.send_timeout"

(* Requests answered from another request's in-flight computation
   (attached as waiters), and broadcasts delivered by leaders. *)
let coalesced_counter = Telemetry.Counter.make "server.coalesced.requests"

let coalesced_broadcasts_counter =
  Telemetry.Counter.make "server.coalesced.broadcasts"

let queue_depth_gauge = Telemetry.Gauge.make "server.queue.depth"
let request_seconds = Telemetry.Histogram.make "server.request.seconds"
let queue_wait_seconds = Telemetry.Histogram.make "server.queue.wait.seconds"

(* Observability gauges: connection/queue/dispatcher occupancy is set
   where it changes; GC, runtime and SLO gauges are sampled at scrape
   time ([metrics], [stats], SIGUSR1) — see [set_runtime_gauges]. *)
let connections_live_gauge = Telemetry.Gauge.make "server.connections.live"
let queue_high_water_gauge = Telemetry.Gauge.make "server.queue.high_water"
let queue_capacity_gauge = Telemetry.Gauge.make "server.queue.capacity"
let dispatchers_busy_gauge = Telemetry.Gauge.make "server.dispatchers.busy"
let dispatchers_total_gauge = Telemetry.Gauge.make "server.dispatchers.total"
let inflight_gauge = Telemetry.Gauge.make "server.coalesced.inflight"
let memo_entries_gauge = Telemetry.Gauge.make "server.memo.entries"
let spec_cache_entries_gauge = Telemetry.Gauge.make "server.spec_cache.entries"
let uptime_gauge = Telemetry.Gauge.make "server.uptime.seconds"
let pool_domains_gauge = Telemetry.Gauge.make "server.pool.domains"
let gc_heap_words_gauge = Telemetry.Gauge.make "server.gc.heap_words"
let gc_major_words_gauge = Telemetry.Gauge.make "server.gc.major_words"
let gc_minor_words_gauge = Telemetry.Gauge.make "server.gc.minor_words"

let gc_major_collections_gauge =
  Telemetry.Gauge.make "server.gc.major_collections"

let gc_minor_collections_gauge =
  Telemetry.Gauge.make "server.gc.minor_collections"

let gc_compactions_gauge = Telemetry.Gauge.make "server.gc.compactions"
let slo_target_gauge = Telemetry.Gauge.make "server.slo.target"
let slo_window_gauge = Telemetry.Gauge.make "server.slo.window.seconds"
let slo_total_gauge = Telemetry.Gauge.make "server.slo.window.requests"
let slo_bad_gauge = Telemetry.Gauge.make "server.slo.window.bad"
let slo_success_rate_gauge = Telemetry.Gauge.make "server.slo.success_rate"
let slo_burn_rate_gauge = Telemetry.Gauge.make "server.slo.burn_rate"

let slo_budget_remaining_gauge =
  Telemetry.Gauge.make "server.slo.error_budget_remaining"

let slo_met_gauge = Telemetry.Gauge.make "server.slo.met"
let traces_sampled_counter = Telemetry.Counter.make "server.traces.sampled"

(* Per-trace collector overflow, summed across requests at finish (the
   registry's own buffer drops stay in [server.spans.dropped]). *)
let trace_spans_dropped_counter =
  Telemetry.Counter.make "server.trace.spans.dropped"

(* Host pressure: sampled at scrape time like the GC gauges. Dotted
   names render as process_cpu_seconds_total / process_open_fds /
   process_threads_live in the Prometheus exposition. *)
let process_cpu_gauge = Telemetry.Gauge.make "process.cpu.seconds.total"
let process_fds_gauge = Telemetry.Gauge.make "process.open.fds"
let process_threads_gauge = Telemetry.Gauge.make "process.threads.live"

(* Counters whose dispatch-to-finish deltas a sampled trace records as
   its resource attribution: where the request's search and solver
   work actually went. Process-wide, so concurrent requests bleed into
   each other's deltas — an attribution hint, not an exact ledger. *)
let attributed_counters =
  [
    "search.candidates.generated";
    "search.candidates.evaluated";
    "search.eval.downtime.fresh";
    "search.eval.downtime.reused";
    "avail.engine.analytic.calls";
    "avail.engine.memoized.calls";
    "avail.engine.exact.calls";
    "avail.exact.solve.fresh";
    "avail.exact.solve.incremental";
    "avail.memo.hits";
    "avail.memo.misses";
    "markov.birth_death.solves";
    "markov.gth.solves";
    "markov.banded.solves";
    "markov.power.solves";
    "markov.lu.solves";
    "markov.solver.fresh";
    "markov.solver.incremental";
    "markov.solver.fallback";
    "markov.solver.cached";
    "parallel.tasks.queued";
    "parallel.tasks.executed";
  ]

(* ------------------------------------------------------------------ *)
(* Configuration *)

type transport = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  transport : transport;
  jobs : int;
  dispatchers : int;
  queue_capacity : int;
  max_conns : int;
  coalesce : bool;
  default_deadline_ms : float option;
  memo_capacity : int;
  span_capacity : int;
  send_timeout_s : float;
  log_path : string option;
  slo : Slo.config;
  trace_sample : float;
  trace_ring : int;
  trace_spans : int;
}

(* [Unix.select] caps fds at FD_SETSIZE (1024 on Linux); the default
   connection limit leaves headroom for the listener, the wakeup pipe,
   spec files and the log. *)
let max_conns_ceiling = 1000

let default_config transport =
  {
    transport;
    jobs = Domain.recommended_domain_count ();
    dispatchers = 2;
    queue_capacity = 128;
    max_conns = 900;
    coalesce = true;
    default_deadline_ms = None;
    memo_capacity = Memo.default_capacity;
    span_capacity = 4096;
    send_timeout_s = 10.;
    log_path = None;
    slo = Slo.default_config;
    trace_sample = 0.;
    trace_ring = 256;
    trace_spans = Telemetry.Trace.default_capacity;
  }

(* Stop reading a connection whose response backlog is above this:
   readiness-level backpressure instead of unbounded buffering. *)
let read_pause_bytes = 256 * 1024

(* A backlog above this means the client will never catch up: drop it. *)
let out_kill_bytes = 8 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Connections *)

(* One event-loop thread owns every fd: it accepts, reads, parses and
   closes. Dispatcher threads never touch a socket — they enqueue
   response bytes under [out_mutex] and wake the loop, which flushes
   when the fd is writable. [conn_open] (under [out_mutex]) is the
   enqueue guard; only the event loop clears it and closes the fd, so
   the fd is never used after close (no fd-reuse races). Fields other
   than the out-queue group are event-loop-private, except
   [outstanding] (atomic: admitted-but-unanswered requests, used to
   delay close-on-EOF until pipelined responses flush). *)
type conn = {
  fd : Unix.file_descr;
  conn_id : int;  (** Monotone accept sequence; keys the request log. *)
  framing : Framing.t;
  outstanding : int Atomic.t;
  out_mutex : Mutex.t;
  out_q : string Queue.t;
  mutable out_off : int;  (** Bytes of the head chunk already written. *)
  mutable out_bytes : int;
  mutable out_dead : bool;  (** Client hung up / backlog overflow. *)
  mutable stall_since : float;  (** Last write progress, when pending. *)
  mutable conn_open : bool;
  mutable r_eof : bool;
  mutable want_close : bool;  (** Close once the backlog flushes. *)
}

type waiter = {
  w_conn : conn;
  w_version : int;
  w_id : Json.t;
  w_lifecycle : Lifecycle.t;
}

(* What a leader's computation resolves to; broadcast verbatim to every
   waiter — errors too, so waiters share the leader's fate. *)
type verdict = (Json.t, Protocol.error_code * string) result

type job = {
  conn : conn;
  request : Protocol.request;
  enqueued_at : float;
  lifecycle : Lifecycle.t;
  key : string option;  (** In-flight registry key this job leads. *)
}

(* Searches record candidate fates into an ambient provenance trail
   (process-global), so a trail-installed search must not overlap any
   other search: plain searches take the gate shared, [explain] takes
   it exclusive. *)
type search_gate = {
  g_mutex : Mutex.t;
  g_cond : Condition.t;
  mutable g_readers : int;
  mutable g_writer : bool;
  mutable g_writers_waiting : int;
      (* Writer-preference: new readers also wait while a writer is
         queued, so sustained design/frontier traffic cannot starve an
         [explain] request indefinitely. *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  port : int option;
  loop : Event_loop.t;
  queue : job Bounded_queue.t;
  inflight : (waiter, verdict) Inflight.t;
  pool : Pool.t;
  memo : Memo.t;
  search_config : Aved_search.Search_config.t;
  specs : Spec_cache.t;
  registry : Telemetry.t;
  gate : search_gate;
  slo : Slo.t;
  traces : Trace_store.t;
  exemplars : Exemplars.t;
  log : Request_log.t option;
  started_at : float;
  stopping : bool Atomic.t;
  snapshot_requested : bool Atomic.t; (* set by SIGUSR1 *)
  next_conn_id : int Atomic.t;
  queue_high_water : int Atomic.t;
  dispatchers_busy : int Atomic.t;
  dispatchers_alive : int Atomic.t;
  connections_live : int Atomic.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;  (* event-loop thread only *)
  mutable dispatcher_threads : Thread.t list;
}

(* Write as much of the backlog as the socket accepts right now.
   Caller holds [out_mutex] and has checked [conn_open && not out_dead]
   (the fd cannot be closed underneath us: {!close_conn} clears
   [conn_open] under the same mutex before closing). EAGAIN just parks
   the rest for the next writable event; a hard write error marks the
   connection dead (the sweep closes it). *)
let flush_locked conn =
  let progress = ref true in
  while !progress && not (Queue.is_empty conn.out_q) do
    let head = Queue.peek conn.out_q in
    let len = String.length head in
    match Unix.write_substring conn.fd head conn.out_off (len - conn.out_off)
    with
    | 0 -> progress := false
    | n ->
        conn.out_off <- conn.out_off + n;
        conn.out_bytes <- conn.out_bytes - n;
        conn.stall_since <- Telemetry.now_seconds ();
        if conn.out_off = len then begin
          ignore (Queue.pop conn.out_q);
          conn.out_off <- 0
        end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        progress := false
    | exception (Unix.Unix_error _ | Sys_error _) ->
        conn.out_dead <- true;
        Queue.clear conn.out_q;
        conn.out_bytes <- 0;
        conn.out_off <- 0
  done

(* Enqueue a response line and try to write it out inline — the fast
   path. With an empty backlog and a draining peer the write usually
   completes here, on the dispatcher's own thread, and the event loop
   never hears about the response at all; only a partial write (slow
   reader) or a newly-dead connection needs the loop woken, for write
   interest or the sweep. Never blocks: the fd is non-blocking and the
   inline flush stops at EAGAIN. Called from dispatcher threads and
   from the event loop itself. *)
let send_line t conn line =
  Mutex.lock conn.out_mutex;
  let accepted = conn.conn_open && not conn.out_dead in
  if accepted then begin
    let data = line ^ "\n" in
    if conn.out_bytes = 0 then conn.stall_since <- Telemetry.now_seconds ();
    Queue.push data conn.out_q;
    conn.out_bytes <- conn.out_bytes + String.length data;
    if conn.out_bytes > out_kill_bytes then begin
      conn.out_dead <- true;
      Queue.clear conn.out_q;
      conn.out_bytes <- 0;
      conn.out_off <- 0
    end
    else flush_locked conn
  end;
  let need_loop = accepted && (conn.out_dead || conn.out_bytes > 0) in
  Mutex.unlock conn.out_mutex;
  if need_loop then Event_loop.wakeup t.loop

(* The slow path: flush when select reports the fd writable. *)
let flush_conn conn =
  Mutex.lock conn.out_mutex;
  if conn.conn_open && not conn.out_dead then flush_locked conn;
  Mutex.unlock conn.out_mutex

(* Event-loop thread only. *)
let close_conn t conn =
  Mutex.lock conn.out_mutex;
  let was_open = conn.conn_open in
  conn.conn_open <- false;
  Queue.clear conn.out_q;
  conn.out_bytes <- 0;
  conn.out_off <- 0;
  Mutex.unlock conn.out_mutex;
  if was_open then begin
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove t.conns conn.fd;
    Telemetry.Counter.incr connections_closed;
    Atomic.decr t.connections_live;
    Telemetry.Gauge.set connections_live_gauge
      (float_of_int (Atomic.get t.connections_live))
  end

(* ------------------------------------------------------------------ *)
(* The search gate *)

let make_gate () =
  {
    g_mutex = Mutex.create ();
    g_cond = Condition.create ();
    g_readers = 0;
    g_writer = false;
    g_writers_waiting = 0;
  }

let with_shared g f =
  Mutex.lock g.g_mutex;
  while g.g_writer || g.g_writers_waiting > 0 do
    Condition.wait g.g_cond g.g_mutex
  done;
  g.g_readers <- g.g_readers + 1;
  Mutex.unlock g.g_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.g_mutex;
      g.g_readers <- g.g_readers - 1;
      if g.g_readers = 0 then Condition.broadcast g.g_cond;
      Mutex.unlock g.g_mutex)

let with_exclusive g f =
  Mutex.lock g.g_mutex;
  g.g_writers_waiting <- g.g_writers_waiting + 1;
  while g.g_writer || g.g_readers > 0 do
    Condition.wait g.g_cond g.g_mutex
  done;
  g.g_writers_waiting <- g.g_writers_waiting - 1;
  g.g_writer <- true;
  Mutex.unlock g.g_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.g_mutex;
      g.g_writer <- false;
      Condition.broadcast g.g_cond;
      Mutex.unlock g.g_mutex)

(* ------------------------------------------------------------------ *)
(* Parameter decoding *)

exception Bad_params of string

let bad_params fmt = Printf.ksprintf (fun m -> raise (Bad_params m)) fmt
let find_param params name = List.assoc_opt name params

let string_param params name =
  match find_param params name with
  | Some (Json.String s) -> Some s
  | Some _ -> bad_params "param %S must be a string" name
  | None -> None

let required_string params name =
  match string_param params name with
  | Some s -> s
  | None -> bad_params "missing required param %S" name

let number_param params name =
  match find_param params name with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | Some _ -> bad_params "param %S must be a number" name
  | None -> None

let int_param params name ~default =
  match find_param params name with
  | Some (Json.Int i) -> i
  | Some _ -> bad_params "param %S must be an integer" name
  | None -> default

let bool_param params name ~default =
  match find_param params name with
  | Some (Json.Bool b) -> b
  | Some _ -> bad_params "param %S must be a boolean" name
  | None -> default

let requirements_of_params params =
  let load = number_param params "load" in
  let downtime = number_param params "downtime_minutes" in
  let job_hours = number_param params "job_hours" in
  match (load, downtime, job_hours) with
  | Some load, Some minutes, None ->
      Model.Requirements.enterprise ~throughput:load
        ~max_annual_downtime:(Duration.of_minutes minutes)
  | None, None, Some hours ->
      Model.Requirements.finite_job
        ~max_execution_time:(Duration.of_hours hours)
  | _ ->
      raise
        (Bad_params
           "specify either \"load\" and \"downtime_minutes\", or \
            \"job_hours\" alone")

let load_checked t ~no_check ~infra_file ~service_file =
  let loaded = Spec_cache.load t.specs ~infra_file ~service_file in
  if (not no_check) && loaded.Spec_cache.check_errors <> [] then
    failwith
      (Printf.sprintf
         "static check failed with %d error(s); set \"no_check\":true to \
          override"
         (List.length loaded.Spec_cache.check_errors));
  (loaded.Spec_cache.infra, loaded.Spec_cache.service)

let resolve_tier service = function
  | Some name -> (
      match Model.Service.find_tier service name with
      | Some tier -> tier
      | None -> failwith (Printf.sprintf "no tier %S" name))
  | None -> List.hd service.Model.Service.tiers

(* ------------------------------------------------------------------ *)
(* Request lifecycle: SLO accounting and the structured log *)

(* The SLO covers the work verbs; monitoring traffic (health, stats,
   metrics) and lines that never parsed to a verb are excluded, so
   dashboard polling and port scanners cannot move the measured
   availability in either direction. *)
let slo_eligible_verb = function
  | "design" | "frontier" | "explain" | "check" -> true
  | _ -> false

(* Outcomes the SLO counts as served: a prompt, well-formed answer —
   including a user error, which is a correct answer to a bad request.
   Shed, deadline-exceeded, shutting-down and internal outcomes spend
   error budget, as does a served answer above the latency budget. *)
let outcome_served = function
  | "ok" | "user-error" | "bad-request" -> true
  | _ -> false

(* Outcome strings in log records and SLO accounting stay on the v1
   spelling regardless of the request's wire dialect: they are an
   internal vocabulary, and PR 7's log consumers pin them. *)
let outcome_of_code code = Protocol.error_code_to_string ~version:1 code

(* Close one request's lifecycle: record it against the SLO, observe
   the per-verb/per-stage histograms, and append the structured log
   record. Called exactly once per request line, on every path —
   answered, coalesced, shed, refused, malformed. For sampled requests
   this is also where the finished span tree enters the trace ring and
   the latency exemplars are recorded. *)
let finish_lifecycle t lifecycle ~outcome =
  if slo_eligible_verb (Lifecycle.verb lifecycle) then
    Slo.record t.slo
      ~now:(Telemetry.now_seconds ())
      ~ok:(outcome_served outcome)
      ~latency_s:(Lifecycle.elapsed_s lifecycle);
  let record =
    Lifecycle.finish lifecycle ~outcome
      ~slow_threshold_s:t.config.slo.Slo.latency_budget_s
  in
  (match Lifecycle.trace lifecycle with
  | None -> ()
  | Some trace ->
      let now = Telemetry.now_seconds () in
      let trace_id = Lifecycle.trace_id lifecycle in
      let verb = Lifecycle.verb lifecycle in
      let total_s = Lifecycle.elapsed_s lifecycle in
      let dropped = Telemetry.Trace.dropped trace in
      if dropped > 0 then
        Telemetry.Counter.add trace_spans_dropped_counter dropped;
      let counters =
        match Telemetry.Trace.baseline trace with
        | [] -> [] (* never dispatched: shed, malformed, refused *)
        | baseline ->
            List.filter_map
              (fun (name, before) ->
                let delta =
                  Telemetry.Counter.read_by_name t.registry name - before
                in
                if delta <> 0 then Some (name, delta) else None)
              baseline
      in
      Trace_store.add t.traces
        {
          Trace_store.trace_id;
          verb;
          conn_id = Lifecycle.conn_id lifecycle;
          outcome;
          started_s = Lifecycle.started_s lifecycle;
          total_s;
          spans = Telemetry.Trace.spans trace;
          spans_dropped = dropped;
          counters;
        };
      Exemplars.observe t.exemplars
        ~metric:(Printf.sprintf "server.verb.%s.seconds" verb)
        ~trace_id ~value:total_s ~now;
      Exemplars.observe t.exemplars ~metric:"server.request.seconds"
        ~trace_id ~value:total_s ~now);
  Option.iter (fun log -> Request_log.write log record) t.log

(* ------------------------------------------------------------------ *)
(* Verb handlers — each renders through the same Api encoder the CLI's
   --json flag uses, at the request's negotiated schema version, which
   is what makes responses byte-identical per dialect. *)

let handle_design t ~version params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let requirements = requirements_of_params params in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let report =
    with_shared t.gate @@ fun () ->
    Aved.Engine.design ~config:t.search_config ~pool:t.pool infra service
      requirements
  in
  Api.design_result_to_json ~version (Api.design_result_of_report report)

let handle_frontier t ~version params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let load =
    match number_param params "load" with
    | Some l -> l
    | None -> bad_params "missing required param %S" "load"
  in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let tier = resolve_tier service (string_param params "tier") in
  let frontier =
    with_shared t.gate @@ fun () ->
    Aved_search.Tier_search.frontier ~pool:t.pool t.search_config infra ~tier
      ~demand:load
  in
  Api.frontier_result_to_json ~version
    (Api.frontier_result_of_candidates ~tier:tier.Model.Service.tier_name
       ~demand:load frontier)

let handle_explain t ~version params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let top = int_param params "top" ~default:5 in
  let requirements = requirements_of_params params in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let explanation =
    with_exclusive t.gate @@ fun () ->
    let trail = Aved_search.Provenance.create () in
    let result =
      Aved_search.Provenance.with_trail trail @@ fun () ->
      Aved.Engine.design ~config:t.search_config ~pool:t.pool infra service
        requirements
    in
    Option.map
      (fun report ->
        Aved.Engine.explain ~top ~trail ~config:t.search_config infra service
          requirements report)
      result
  in
  Api.explain_result_to_json ~version
    (Api.explain_result_of_explanation explanation)

let handle_check ~version params =
  let files =
    match find_param params "files" with
    | Some (Json.List items) ->
        List.map
          (function
            | Json.String s -> s
            | _ -> bad_params "param %S must be a list of path strings" "files")
          items
    | Some _ -> bad_params "param %S must be a list of path strings" "files"
    | None -> bad_params "missing required param %S" "files"
  in
  if files = [] then bad_params "param %S must be non-empty" "files";
  Api.check_result_to_json ~version
    (Api.check_result_of_diagnostics (Aved_check.Check.check_files files))

let handle_health ~version () =
  Api.versioned ~version [ ("status", Json.String "ok") ]

let handle_trace t ~version params =
  let id = required_string params "trace_id" in
  match Trace_store.find t.traces id with
  | Some completed ->
      Api.versioned ~version [ ("trace", Trace_store.to_json completed) ]
  | None ->
      failwith
        (Printf.sprintf
           "no completed trace %S: not sampled (see serve --trace-sample), \
            not finished yet, or evicted from the ring"
           id)

let histogram_json (s : Telemetry.Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float (Telemetry.Histogram.mean s));
      ("p50", Json.Float (Telemetry.Histogram.quantile_est s 0.5));
      ("p95", Json.Float (Telemetry.Histogram.quantile_est s 0.95));
      ("p99", Json.Float (Telemetry.Histogram.quantile_est s 0.99));
    ]

let span_totals spans =
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Telemetry.span) ->
      if not (Hashtbl.mem totals s.span_name) then
        order := s.span_name :: !order;
      let calls, secs =
        Option.value (Hashtbl.find_opt totals s.span_name) ~default:(0, 0.)
      in
      Hashtbl.replace totals s.span_name (calls + 1, secs +. s.dur_s))
    spans;
  List.rev_map
    (fun name ->
      let calls, secs = Hashtbl.find totals name in
      ( name,
        Json.Obj
          [ ("calls", Json.Int calls); ("total_seconds", Json.Float secs) ] ))
    !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* GC, runtime, occupancy and SLO gauges are sampled here — at scrape
   time — rather than on the request path, so their cost is paid by
   whoever asks ([metrics], [stats], SIGUSR1), never by a request. *)
let set_runtime_gauges t =
  let gc = Gc.quick_stat () in
  Telemetry.Gauge.set gc_heap_words_gauge (float_of_int gc.Gc.heap_words);
  Telemetry.Gauge.set gc_major_words_gauge gc.Gc.major_words;
  Telemetry.Gauge.set gc_minor_words_gauge gc.Gc.minor_words;
  Telemetry.Gauge.set gc_major_collections_gauge
    (float_of_int gc.Gc.major_collections);
  Telemetry.Gauge.set gc_minor_collections_gauge
    (float_of_int gc.Gc.minor_collections);
  Telemetry.Gauge.set gc_compactions_gauge (float_of_int gc.Gc.compactions);
  Telemetry.Gauge.set process_cpu_gauge (Process_stats.cpu_seconds ());
  Option.iter
    (fun n -> Telemetry.Gauge.set process_fds_gauge (float_of_int n))
    (Process_stats.open_fds ());
  Option.iter
    (fun n -> Telemetry.Gauge.set process_threads_gauge (float_of_int n))
    (Process_stats.live_threads ());
  Telemetry.Gauge.set uptime_gauge (Telemetry.now_seconds () -. t.started_at);
  Telemetry.Gauge.set pool_domains_gauge (float_of_int t.config.jobs);
  Telemetry.Gauge.set dispatchers_total_gauge
    (float_of_int t.config.dispatchers);
  Telemetry.Gauge.set dispatchers_busy_gauge
    (float_of_int (Atomic.get t.dispatchers_busy));
  Telemetry.Gauge.set queue_depth_gauge
    (float_of_int (Bounded_queue.length t.queue));
  Telemetry.Gauge.set queue_capacity_gauge
    (float_of_int (Bounded_queue.capacity t.queue));
  Telemetry.Gauge.set queue_high_water_gauge
    (float_of_int (Atomic.get t.queue_high_water));
  Telemetry.Gauge.set inflight_gauge (float_of_int (Inflight.length t.inflight));
  Telemetry.Gauge.set memo_entries_gauge (float_of_int (Memo.length t.memo));
  Telemetry.Gauge.set spec_cache_entries_gauge
    (float_of_int (Spec_cache.length t.specs));
  Telemetry.Gauge.set connections_live_gauge
    (float_of_int (Atomic.get t.connections_live));
  let snap = Slo.snapshot t.slo ~now:(Telemetry.now_seconds ()) in
  Telemetry.Gauge.set slo_target_gauge snap.Slo.target;
  Telemetry.Gauge.set slo_window_gauge snap.Slo.window_seconds;
  Telemetry.Gauge.set slo_total_gauge (float_of_int snap.Slo.total);
  Telemetry.Gauge.set slo_bad_gauge (float_of_int snap.Slo.bad);
  Telemetry.Gauge.set slo_success_rate_gauge snap.Slo.success_rate;
  Telemetry.Gauge.set slo_burn_rate_gauge snap.Slo.burn_rate;
  Telemetry.Gauge.set slo_budget_remaining_gauge snap.Slo.budget_remaining;
  Telemetry.Gauge.set slo_met_gauge (if snap.Slo.met then 1. else 0.);
  snap

let slo_json (s : Slo.snapshot) =
  Json.Obj
    [
      ("target", Json.Float s.Slo.target);
      ("window_seconds", Json.Float s.Slo.window_seconds);
      ("requests", Json.Int s.Slo.total);
      ("good", Json.Int s.Slo.good);
      ("bad", Json.Int s.Slo.bad);
      ("success_rate", Json.Float s.Slo.success_rate);
      ("error_budget", Json.Float s.Slo.error_budget);
      ("burn_rate", Json.Float s.Slo.burn_rate);
      ("budget_remaining", Json.Float s.Slo.budget_remaining);
      ("met", Json.Bool s.Slo.met);
    ]

let handle_metrics t ~version =
  ignore (set_runtime_gauges t);
  let body =
    Prometheus.render ~exemplars:t.exemplars
      ~extra_counters:
        [
          ("server.spans.dropped", Telemetry.spans_dropped t.registry);
          ("server.trace.ring.evictions", Trace_store.evictions t.traces);
        ]
      t.registry
  in
  Api.metrics_result_to_json ~version
    { Api.metrics_content_type = Prometheus.content_type; body }

let handle_stats t ~version =
  let memo_hits, memo_misses = Memo.stats t.memo in
  let snap = set_runtime_gauges t in
  Api.versioned ~version
    [
      ( "uptime_seconds",
        Json.Float (Telemetry.now_seconds () -. t.started_at) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Bounded_queue.length t.queue));
            ("capacity", Json.Int (Bounded_queue.capacity t.queue));
            ("high_water", Json.Int (Atomic.get t.queue_high_water));
            ( "shed",
              Json.Int (Telemetry.Counter.read t.registry shed_counter) );
            ( "deadline_exceeded",
              Json.Int (Telemetry.Counter.read t.registry deadline_counter) );
          ] );
      ( "connections",
        Json.Obj
          [
            ("live", Json.Int (Atomic.get t.connections_live));
            ( "opened",
              Json.Int (Telemetry.Counter.read t.registry connections_opened)
            );
            ( "closed",
              Json.Int (Telemetry.Counter.read t.registry connections_closed)
            );
            ( "rejected",
              Json.Int (Telemetry.Counter.read t.registry connections_rejected)
            );
          ] );
      ( "coalescing",
        Json.Obj
          [
            ("enabled", Json.Bool t.config.coalesce);
            ("inflight", Json.Int (Inflight.length t.inflight));
            ( "coalesced",
              Json.Int (Telemetry.Counter.read t.registry coalesced_counter) );
            ( "broadcasts",
              Json.Int
                (Telemetry.Counter.read t.registry coalesced_broadcasts_counter)
            );
          ] );
      ("slo", slo_json snap);
      ( "memo",
        Json.Obj
          [
            ("entries", Json.Int (Memo.length t.memo));
            ("capacity", Json.Int (Memo.capacity t.memo));
            ("hits", Json.Int memo_hits);
            ("misses", Json.Int memo_misses);
            ("evictions", Json.Int (Memo.evictions t.memo));
          ] );
      ( "spec_cache",
        Json.Obj
          [
            ("entries", Json.Int (Spec_cache.length t.specs));
            ("hits", Json.Int (Spec_cache.hits t.specs));
            ("misses", Json.Int (Spec_cache.misses t.specs));
          ] );
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Int v))
             (Telemetry.counters t.registry)) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Float v))
             (Telemetry.gauges t.registry)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, s) -> (name, histogram_json s))
             (Telemetry.histograms t.registry)) );
      ("spans", Json.Obj (span_totals (Telemetry.spans t.registry)));
      ("spans_dropped", Json.Int (Telemetry.spans_dropped t.registry));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

(* Answer one attached waiter from the leader's verdict: personalized
   envelope (its own id, negotiated version, trace id) around the
   shared result, [coalesced:true] on v2 success. Runs on the leader's
   dispatcher thread; stage spans for waiters skip "queue" — they
   never occupied a queue slot. *)
let broadcast_waiter t ~body w (verdict : verdict) =
  let lc = w.w_lifecycle in
  let trace_id = Lifecycle.trace_id lc in
  Lifecycle.stamp lc "handle";
  let line, outcome =
    match verdict with
    | Ok _ ->
        Telemetry.Counter.incr responses_ok;
        ( Protocol.ok_response_rendered ~version:w.w_version ~trace_id
            ~coalesced:true ~id:w.w_id (Lazy.force body),
          "ok" )
    | Error (code, message) ->
        Telemetry.Counter.incr responses_error;
        ( Protocol.error_response ~version:w.w_version ~trace_id ~id:w.w_id
            code message,
          outcome_of_code code )
  in
  Lifecycle.stamp lc "encode";
  send_line t w.w_conn line;
  Lifecycle.stamp lc "write";
  Atomic.decr w.w_conn.outstanding;
  finish_lifecycle t lc ~outcome

let handle_request t (job : job) =
  let request = job.request in
  let lc = job.lifecycle in
  Lifecycle.stamp lc "queue";
  Telemetry.Counter.incr (List.assoc request.Protocol.verb request_counters);
  let waited = Telemetry.now_seconds () -. job.enqueued_at in
  Telemetry.Histogram.observe queue_wait_seconds waited;
  let deadline_ms =
    match request.Protocol.deadline_ms with
    | Some ms -> Some ms
    | None -> t.config.default_deadline_ms
  in
  let verdict : verdict =
    match deadline_ms with
    | Some ms when waited *. 1000. > ms ->
        Telemetry.Counter.incr deadline_counter;
        Error
          ( Protocol.Deadline_exceeded,
            Printf.sprintf
              "request waited %.0f ms in queue, over its %.0f ms deadline"
              (waited *. 1000.) ms )
    | Some _ | None -> (
        let verb_name = Protocol.verb_to_string request.Protocol.verb in
        (* Sampled requests: snapshot the attributed counters and
           install the trace context (parented under the handle-stage
           span) for the handler — every [with_span]/[with_trace_span]
           below this point, including on pool worker domains, lands in
           the tree. *)
        let trace_ctx = Lifecycle.handle_context lc in
        (match Lifecycle.trace lc with
        | Some trace ->
            Telemetry.Trace.set_baseline trace
              (List.map
                 (fun name ->
                   (name, Telemetry.Counter.read_by_name t.registry name))
                 attributed_counters)
        | None -> ());
        let version = request.Protocol.version in
        match
          Telemetry.Trace.with_context trace_ctx @@ fun () ->
          Telemetry.with_span ("serve." ^ verb_name) @@ fun () ->
          Telemetry.Histogram.time request_seconds @@ fun () ->
          match request.Protocol.verb with
          | Protocol.Design -> handle_design t ~version request.Protocol.params
          | Protocol.Frontier ->
              handle_frontier t ~version request.Protocol.params
          | Protocol.Explain ->
              handle_explain t ~version request.Protocol.params
          | Protocol.Check -> handle_check ~version request.Protocol.params
          | Protocol.Health -> handle_health ~version ()
          | Protocol.Stats -> handle_stats t ~version
          | Protocol.Metrics -> handle_metrics t ~version
          | Protocol.Trace -> handle_trace t ~version request.Protocol.params
        with
        | result -> Ok result
        | exception Bad_params message -> Error (Protocol.Bad_request, message)
        | exception Failure message -> Error (Protocol.User_error, message)
        | exception Sys_error message -> Error (Protocol.User_error, message)
        | exception exn -> (
            match Aved_spec.Spec.error_to_string exn with
            | Some message -> Error (Protocol.User_error, message)
            | None -> Error (Protocol.Internal, Printexc.to_string exn)))
  in
  let trace_id = Lifecycle.trace_id lc in
  Lifecycle.stamp lc "handle";
  (* Serialize a successful result once; the leader's envelope and
     every waiter's broadcast splice the same rendered body (safe
     because waiters share the leader's negotiated version — it is
     part of the coalescing key). *)
  let body =
    match verdict with
    | Ok result -> lazy (Json.to_string result)
    | Error _ -> lazy ""
  in
  let line, outcome =
    match verdict with
    | Ok _ ->
        Telemetry.Counter.incr responses_ok;
        ( Protocol.ok_response_rendered ~version:request.Protocol.version
            ~trace_id ~coalesced:false ~id:request.Protocol.id
            (Lazy.force body),
          "ok" )
    | Error (code, message) ->
        Telemetry.Counter.incr responses_error;
        ( Protocol.error_response ~version:request.Protocol.version ~trace_id
            ~id:request.Protocol.id code message,
          outcome_of_code code )
  in
  Lifecycle.stamp lc "encode";
  send_line t job.conn line;
  Lifecycle.stamp lc "write";
  Atomic.decr job.conn.outstanding;
  finish_lifecycle t lc ~outcome;
  (* Only now resolve the in-flight entry: every waiter that attached
     while the computation ran gets the shared verdict — errors and
     deadline losses included (shared fate). *)
  match job.key with
  | None -> ()
  | Some key ->
      let waiters =
        Inflight.complete t.inflight ~key ~result:verdict
          ~broadcast:(broadcast_waiter t ~body)
      in
      if waiters > 0 then
        Telemetry.Counter.add coalesced_broadcasts_counter waiters

let rec dispatcher_loop t =
  match Bounded_queue.pop t.queue with
  | None -> ()
  | Some job ->
      Telemetry.Gauge.set queue_depth_gauge
        (float_of_int (Bounded_queue.length t.queue));
      Atomic.incr t.dispatchers_busy;
      Telemetry.Gauge.set dispatchers_busy_gauge
        (float_of_int (Atomic.get t.dispatchers_busy));
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr t.dispatchers_busy;
          Telemetry.Gauge.set dispatchers_busy_gauge
            (float_of_int (Atomic.get t.dispatchers_busy)))
        (fun () -> handle_request t job);
      dispatcher_loop t

let dispatcher_main t =
  dispatcher_loop t;
  Atomic.decr t.dispatchers_alive;
  (* The drain loop waits on this count; wake it promptly. *)
  Event_loop.wakeup t.loop

(* ------------------------------------------------------------------ *)
(* Admission (event-loop thread) *)

(* Raise the high-water mark with a CAS loop: kept CAS although only
   the event loop pushes now, so the invariant survives any future
   second admission path. *)
let raise_high_water t depth =
  let rec bump () =
    let seen = Atomic.get t.queue_high_water in
    if depth > seen then
      if not (Atomic.compare_and_set t.queue_high_water seen depth) then
        bump ()
  in
  bump ();
  Telemetry.Gauge.set queue_high_water_gauge
    (float_of_int (Atomic.get t.queue_high_water))

(* Answer an error from the event loop itself (parse failures, shed,
   draining): the request never reaches a dispatcher. *)
let refuse t conn lifecycle ~version ~id code message =
  Telemetry.Counter.incr responses_error;
  send_line t conn
    (Protocol.error_response ~version
       ~trace_id:(Lifecycle.trace_id lifecycle)
       ~id code message);
  Lifecycle.stamp lifecycle "write";
  finish_lifecycle t lifecycle ~outcome:(outcome_of_code code)

let try_enqueue t conn lifecycle request key =
  let job =
    {
      conn;
      request;
      enqueued_at = Telemetry.now_seconds ();
      lifecycle;
      key;
    }
  in
  if Bounded_queue.try_push t.queue job then begin
    Atomic.incr conn.outstanding;
    let depth = Bounded_queue.length t.queue in
    Telemetry.Gauge.set queue_depth_gauge (float_of_int depth);
    raise_high_water t depth;
    true
  end
  else false

let refuse_capacity t conn lifecycle (request : Protocol.request) =
  let version = request.Protocol.version in
  if Bounded_queue.closed t.queue then
    refuse t conn lifecycle ~version ~id:request.Protocol.id
      Protocol.Shutting_down "server is draining; retry elsewhere"
  else begin
    Telemetry.Counter.incr shed_counter;
    refuse t conn lifecycle ~version ~id:request.Protocol.id Protocol.Overloaded
      (Printf.sprintf "admission queue is full (capacity %d); retry later"
         (Bounded_queue.capacity t.queue))
  end

(* Admission decides coalescing: a work request whose content hash
   matches an in-flight computation attaches as a waiter — consuming
   no queue slot and no dispatcher — and is answered by the leader's
   broadcast. All claims happen here, on the single event-loop thread,
   so a Leader claim and its queue push cannot interleave with another
   claim for the same key. *)
let admit t conn lifecycle (request : Protocol.request) =
  Lifecycle.stamp lifecycle "admit";
  let key = if t.config.coalesce then Protocol.coalesce_key request else None in
  match key with
  | None ->
      if not (try_enqueue t conn lifecycle request None) then
        refuse_capacity t conn lifecycle request
  | Some key -> (
      let waiter =
        {
          w_conn = conn;
          w_version = request.Protocol.version;
          w_id = request.Protocol.id;
          w_lifecycle = lifecycle;
        }
      in
      match Inflight.claim t.inflight ~key ~waiter with
      | `Attached ->
          Telemetry.Counter.incr coalesced_counter;
          Atomic.incr conn.outstanding
      | `Leader ->
          if not (try_enqueue t conn lifecycle request (Some key)) then begin
            (* Remove the claim so the key does not wedge; any waiter
               that could have attached in between would be broadcast
               the same refusal (none can, on this single thread). *)
            ignore
              (Inflight.complete t.inflight ~key
                 ~result:
                   (Error (Protocol.Overloaded, "admission queue is full"))
                 ~broadcast:(broadcast_waiter t ~body:(lazy "")));
            refuse_capacity t conn lifecycle request
          end)

(* The head-sampling decision is taken here, once per request line:
   sampled requests get a span collector that rides the lifecycle to
   the dispatcher and into the engines. Deciding from the trace id
   keeps it deterministic and free of shared state. *)
let start_lifecycle t ~verb ~conn_id ~req_id ~now =
  let trace_id = Trace_id.fresh () in
  let trace =
    if Trace_id.sampled trace_id ~rate:t.config.trace_sample then begin
      Telemetry.Counter.incr traces_sampled_counter;
      Some
        (Telemetry.Trace.create ~capacity:t.config.trace_spans ~trace_id ())
    end
    else None
  in
  Lifecycle.start ?trace ~trace_id ~verb ~conn_id ~req_id ~now ()

(* One complete request line from the framing layer. The catch-all
   keeps a malicious or pathological line (one that trips an unexpected
   exception in parsing/admission) from killing the event loop: answer
   Internal and carry on. *)
let handle_line t conn ~t_read line =
  if String.trim line <> "" then
    match
      match Protocol.request_of_line line with
      | Ok request ->
          let lifecycle =
            start_lifecycle t
              ~verb:(Protocol.verb_to_string request.Protocol.verb)
              ~conn_id:conn.conn_id ~req_id:request.Protocol.id ~now:t_read
          in
          Lifecycle.stamp lifecycle "parse";
          admit t conn lifecycle request
      | Error (version, message) ->
          (* Never parsed to a verb, so it still gets a trace id and a
             log record, but under the reserved verb "invalid" which
             the SLO ignores. *)
          let lifecycle =
            start_lifecycle t ~verb:"invalid" ~conn_id:conn.conn_id
              ~req_id:Json.Null ~now:t_read
          in
          Lifecycle.stamp lifecycle "parse";
          refuse t conn lifecycle ~version ~id:Json.Null Protocol.Bad_request
            message
    with
    | () -> ()
    | exception exn ->
        Telemetry.Counter.incr responses_error;
        send_line t conn
          (Protocol.error_response ~id:Json.Null Protocol.Internal
             (Printf.sprintf "unexpected error reading request: %s"
                (Printexc.to_string exn)))

(* ------------------------------------------------------------------ *)
(* The event loop *)

let register_conn t fd =
  Unix.set_nonblock fd;
  let conn =
    {
      fd;
      conn_id = Atomic.fetch_and_add t.next_conn_id 1;
      framing = Framing.create ();
      outstanding = Atomic.make 0;
      out_mutex = Mutex.create ();
      out_q = Queue.create ();
      out_off = 0;
      out_bytes = 0;
      out_dead = false;
      stall_since = 0.;
      conn_open = true;
      r_eof = false;
      want_close = false;
    }
  in
  Hashtbl.replace t.conns fd conn;
  Telemetry.Counter.incr connections_opened;
  Atomic.incr t.connections_live;
  Telemetry.Gauge.set connections_live_gauge
    (float_of_int (Atomic.get t.connections_live));
  conn

let rec accept_burst t =
  if not (Atomic.get t.stopping) then
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception
        Unix.Unix_error
          ((EINTR | ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _) ->
        ()
    | fd, _addr ->
        let conn = register_conn t fd in
        if Atomic.get t.connections_live > t.config.max_conns then begin
          Telemetry.Counter.incr connections_rejected;
          conn.want_close <- true;
          Telemetry.Counter.incr responses_error;
          send_line t conn
            (Protocol.error_response ~id:Json.Null Protocol.Overloaded
               (Printf.sprintf
                  "connection limit reached (max-conns %d); retry later"
                  t.config.max_conns))
        end;
        accept_burst t

let handle_readable t buf conn =
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception (Unix.Unix_error _ | Sys_error _) ->
      conn.r_eof <- true;
      conn.out_dead <- true
  | 0 -> conn.r_eof <- true
  | n -> (
      let t_read = Telemetry.now_seconds () in
      match Framing.feed conn.framing buf ~len:n with
      | Ok lines -> List.iter (handle_line t conn ~t_read) lines
      | Error message ->
          (* The stream cannot be re-synchronized: answer once, then
             close after the error flushes. *)
          Telemetry.Counter.incr responses_error;
          send_line t conn
            (Protocol.error_response ~id:Json.Null Protocol.Bad_request message);
          conn.want_close <- true)

(* One pass over every connection: build the interest sets for the next
   wait and collect the ones to close (dead, stalled past the send
   timeout, or fully answered after EOF/want_close). *)
let sweep_conns t ~now ~reads ~writes ~closes =
  Hashtbl.iter
    (fun fd conn ->
      Mutex.lock conn.out_mutex;
      let pending = conn.out_bytes in
      let dead = conn.out_dead in
      let stalled =
        pending > 0 && now -. conn.stall_since > t.config.send_timeout_s
      in
      Mutex.unlock conn.out_mutex;
      if dead then closes := conn :: !closes
      else if stalled then begin
        Telemetry.Counter.incr connections_stalled;
        closes := conn :: !closes
      end
      else if
        (conn.r_eof || conn.want_close)
        && pending = 0
        && Atomic.get conn.outstanding = 0
      then closes := conn :: !closes
      else begin
        if pending > 0 then writes := fd :: !writes;
        if
          (not conn.r_eof) && (not conn.want_close)
          && pending < read_pause_bytes
        then reads := fd :: !reads
      end)
    t.conns

(* SIGUSR1 snapshot: the full stats document (counters, gauges, SLO,
   GC) as one "snapshot" record in the structured log, or on stderr
   when no log is configured. *)
let dump_snapshot t =
  let stats = handle_stats t ~version:Api.schema_version in
  match t.log with
  | Some log -> Request_log.event log ~kind:"snapshot" [ ("stats", stats) ]
  | None ->
      Printf.eprintf "aved serve snapshot: %s\n%!" (Json.to_string stats)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

(* A leftover socket path may belong to a still-running daemon: probe
   it with a connect before unlinking, and refuse to steal a live
   endpoint. A stale path (nothing accepting) is removed; failure to
   remove it is a clean user error, not an uncaught Unix_error. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if live then
      failwith
        (Printf.sprintf "socket %S is in use by a running server" path);
    try Unix.unlink path
    with Unix.Unix_error (err, _, _) ->
      failwith
        (Printf.sprintf "cannot remove stale socket %S: %s" path
           (Unix.error_message err))
  end

let bind_listener = function
  | Unix_socket path ->
      claim_socket_path path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with exn ->
         Unix.close fd;
         raise exn);
      (fd, None)
  | Tcp { host; port } ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port));
         Unix.listen fd 64
       with exn ->
         Unix.close fd;
         raise exn);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Some p
        | Unix.ADDR_UNIX _ -> None
      in
      (fd, port)

let create config =
  if config.dispatchers < 1 then
    invalid_arg "Server.create: dispatchers must be >= 1";
  if config.max_conns < 1 || config.max_conns > max_conns_ceiling then
    invalid_arg
      (Printf.sprintf "Server.create: max_conns must be within [1, %d]"
         max_conns_ceiling);
  (match Slo.validate_config config.slo with
  | Ok _ -> ()
  | Error msg -> failwith (Printf.sprintf "invalid SLO config: %s" msg));
  if
    Float.is_nan config.trace_sample
    || config.trace_sample < 0.
    || config.trace_sample > 1.
  then failwith "trace_sample must be within [0, 1]";
  if config.trace_ring < 1 then failwith "trace_ring must be >= 1";
  if config.trace_spans < 1 then failwith "trace_spans must be >= 1";
  (* SIGPIPE would kill the process on a write to a client that hung
     up; we detect that per-connection from the write error instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let registry = Telemetry.create ~span_capacity:config.span_capacity () in
  Telemetry.install registry;
  let memo = Memo.create ~capacity:config.memo_capacity () in
  let search_config =
    Aved_search.Search_config.default
    |> Aved_search.Search_config.with_jobs config.jobs
    |> Aved_search.Search_config.with_engine
         (Aved_avail.Evaluate.Memoized memo)
  in
  let log =
    match config.log_path with
    | None -> None
    | Some path -> (
        match Request_log.open_path path with
        | log -> Some log
        | exception Sys_error msg ->
            failwith (Printf.sprintf "cannot open request log: %s" msg))
  in
  let listen_fd, port =
    try bind_listener config.transport
    with exn ->
      Option.iter Request_log.close log;
      raise exn
  in
  Unix.set_nonblock listen_fd;
  let t =
    {
      config;
      listen_fd;
      port;
      loop = Event_loop.create ();
      queue = Bounded_queue.create ~capacity:config.queue_capacity;
      inflight = Inflight.create ();
      pool = Pool.create ~jobs:config.jobs;
      memo;
      search_config;
      specs = Spec_cache.create ();
      registry;
      gate = make_gate ();
      slo = Slo.create config.slo;
      traces = Trace_store.create ~capacity:config.trace_ring;
      exemplars = Exemplars.create ();
      log;
      started_at = Telemetry.now_seconds ();
      stopping = Atomic.make false;
      snapshot_requested = Atomic.make false;
      next_conn_id = Atomic.make 0;
      queue_high_water = Atomic.make 0;
      dispatchers_busy = Atomic.make 0;
      dispatchers_alive = Atomic.make config.dispatchers;
      connections_live = Atomic.make 0;
      conns = Hashtbl.create 64;
      dispatcher_threads = [];
    }
  in
  Option.iter
    (fun log ->
      Request_log.event log ~kind:"start"
        [
          ("pid", Json.Int (Unix.getpid ()));
          ("slo_target", Json.Float config.slo.Slo.target);
          ( "slo_latency_budget_ms",
            Json.Float (config.slo.Slo.latency_budget_s *. 1000.) );
          ("slo_window_s", Json.Float config.slo.Slo.window_s);
        ])
    t.log;
  t.dispatcher_threads <-
    List.init config.dispatchers (fun _ -> Thread.create dispatcher_main t);
  t

let stop t =
  Atomic.set t.stopping true;
  Event_loop.wakeup t.loop

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  (* SIGUSR1 requests a full metrics/GC snapshot. The handler only sets
     a flag; the event loop performs the dump, since writing the log
     from a signal handler would not be async-signal-safe. *)
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set t.snapshot_requested true))
  with Invalid_argument _ | Sys_error _ -> ()

let bound_port t = t.port

let run t =
  let buf = Bytes.create 65536 in
  let drain_deadline = ref None in
  let finished = ref false in
  while not !finished do
    if Atomic.compare_and_set t.snapshot_requested true false then
      dump_snapshot t;
    (* Entering drain: stop accepting, refuse new admissions, but keep
       the loop alive — pending responses still flush, new lines are
       answered with shutting-down, and late twins can still attach to
       computations already in flight. *)
    (if Atomic.get t.stopping && !drain_deadline = None then begin
       (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
       (match t.config.transport with
       | Unix_socket path -> (
           try Unix.unlink path with Unix.Unix_error _ -> ())
       | Tcp _ -> ());
       Bounded_queue.close t.queue;
       drain_deadline :=
         Some (Telemetry.now_seconds () +. t.config.send_timeout_s +. 1.0)
     end);
    let now = Telemetry.now_seconds () in
    let reads = ref [] and writes = ref [] and closes = ref [] in
    sweep_conns t ~now ~reads ~writes ~closes;
    List.iter (close_conn t) !closes;
    let draining = !drain_deadline <> None in
    let read_set = if draining then !reads else t.listen_fd :: !reads in
    let readable, writable =
      Event_loop.wait t.loop ~read:read_set ~write:!writes ~timeout:0.25
    in
    List.iter
      (fun fd ->
        match Hashtbl.find_opt t.conns fd with
        | Some conn -> flush_conn conn
        | None -> ())
      writable;
    List.iter
      (fun fd ->
        if fd = t.listen_fd && not draining then accept_burst t
        else
          match Hashtbl.find_opt t.conns fd with
          | Some conn -> handle_readable t buf conn
          | None -> ())
      readable;
    (* Drain exit: every dispatcher has exited (the queue is closed and
       empty, so every admitted request was answered and every waiter
       broadcast) and every backlog byte flushed — or the grace period
       lapsed (a stalled client cannot hold shutdown hostage). *)
    match !drain_deadline with
    | None -> ()
    | Some deadline ->
        let dispatchers_done = Atomic.get t.dispatchers_alive = 0 in
        let pending =
          Hashtbl.fold (fun _ c acc -> acc + c.out_bytes) t.conns 0
        in
        if (dispatchers_done && pending = 0) || now > deadline then
          finished := true
  done;
  List.iter Thread.join t.dispatcher_threads;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (close_conn t) remaining;
  Event_loop.close t.loop;
  Pool.shutdown t.pool;
  Option.iter
    (fun log ->
      Request_log.event log ~kind:"stop"
        [
          ( "uptime_s",
            Json.Float (Telemetry.now_seconds () -. t.started_at) );
        ];
      Request_log.close log)
    t.log;
  Telemetry.uninstall ()
