module Telemetry = Aved_telemetry.Telemetry
module Json = Aved_explain.Json
module Api = Aved_api.Api
module Model = Aved_model
module Duration = Aved_units.Duration
module Memo = Aved_avail.Memo
module Pool = Aved_parallel.Pool
module Bounded_queue = Aved_parallel.Bounded_queue
module Trace_id = Aved_obs.Trace_id
module Lifecycle = Aved_obs.Lifecycle
module Slo = Aved_obs.Slo
module Prometheus = Aved_obs.Prometheus
module Request_log = Aved_obs.Request_log
module Trace_store = Aved_obs.Trace_store
module Exemplars = Aved_obs.Exemplars
module Process_stats = Aved_obs.Process_stats

(* ------------------------------------------------------------------ *)
(* Metrics *)

let request_counters =
  List.map
    (fun v ->
      (v, Telemetry.Counter.make ("server.requests." ^ Protocol.verb_to_string v)))
    Protocol.all_verbs

let responses_ok = Telemetry.Counter.make "server.responses.ok"
let responses_error = Telemetry.Counter.make "server.responses.error"
let shed_counter = Telemetry.Counter.make "server.requests.shed"

let deadline_counter =
  Telemetry.Counter.make "server.requests.deadline_exceeded"

let connections_opened = Telemetry.Counter.make "server.connections.opened"
let connections_closed = Telemetry.Counter.make "server.connections.closed"
let queue_depth_gauge = Telemetry.Gauge.make "server.queue.depth"
let request_seconds = Telemetry.Histogram.make "server.request.seconds"
let queue_wait_seconds = Telemetry.Histogram.make "server.queue.wait.seconds"

(* Observability gauges: connection/queue/dispatcher occupancy is set
   where it changes; GC, runtime and SLO gauges are sampled at scrape
   time ([metrics], [stats], SIGUSR1) — see [set_runtime_gauges]. *)
let connections_live_gauge = Telemetry.Gauge.make "server.connections.live"
let queue_high_water_gauge = Telemetry.Gauge.make "server.queue.high_water"
let queue_capacity_gauge = Telemetry.Gauge.make "server.queue.capacity"
let dispatchers_busy_gauge = Telemetry.Gauge.make "server.dispatchers.busy"
let dispatchers_total_gauge = Telemetry.Gauge.make "server.dispatchers.total"
let memo_entries_gauge = Telemetry.Gauge.make "server.memo.entries"
let spec_cache_entries_gauge = Telemetry.Gauge.make "server.spec_cache.entries"
let uptime_gauge = Telemetry.Gauge.make "server.uptime.seconds"
let pool_domains_gauge = Telemetry.Gauge.make "server.pool.domains"
let gc_heap_words_gauge = Telemetry.Gauge.make "server.gc.heap_words"
let gc_major_words_gauge = Telemetry.Gauge.make "server.gc.major_words"
let gc_minor_words_gauge = Telemetry.Gauge.make "server.gc.minor_words"

let gc_major_collections_gauge =
  Telemetry.Gauge.make "server.gc.major_collections"

let gc_minor_collections_gauge =
  Telemetry.Gauge.make "server.gc.minor_collections"

let gc_compactions_gauge = Telemetry.Gauge.make "server.gc.compactions"
let slo_target_gauge = Telemetry.Gauge.make "server.slo.target"
let slo_window_gauge = Telemetry.Gauge.make "server.slo.window.seconds"
let slo_total_gauge = Telemetry.Gauge.make "server.slo.window.requests"
let slo_bad_gauge = Telemetry.Gauge.make "server.slo.window.bad"
let slo_success_rate_gauge = Telemetry.Gauge.make "server.slo.success_rate"
let slo_burn_rate_gauge = Telemetry.Gauge.make "server.slo.burn_rate"

let slo_budget_remaining_gauge =
  Telemetry.Gauge.make "server.slo.error_budget_remaining"

let slo_met_gauge = Telemetry.Gauge.make "server.slo.met"
let traces_sampled_counter = Telemetry.Counter.make "server.traces.sampled"

(* Per-trace collector overflow, summed across requests at finish (the
   registry's own buffer drops stay in [server.spans.dropped]). *)
let trace_spans_dropped_counter =
  Telemetry.Counter.make "server.trace.spans.dropped"

(* Host pressure: sampled at scrape time like the GC gauges. Dotted
   names render as process_cpu_seconds_total / process_open_fds /
   process_threads_live in the Prometheus exposition. *)
let process_cpu_gauge = Telemetry.Gauge.make "process.cpu.seconds.total"
let process_fds_gauge = Telemetry.Gauge.make "process.open.fds"
let process_threads_gauge = Telemetry.Gauge.make "process.threads.live"

(* Counters whose dispatch-to-finish deltas a sampled trace records as
   its resource attribution: where the request's search and solver
   work actually went. Process-wide, so concurrent requests bleed into
   each other's deltas — an attribution hint, not an exact ledger. *)
let attributed_counters =
  [
    "search.candidates.generated";
    "search.candidates.evaluated";
    "search.eval.downtime.fresh";
    "search.eval.downtime.reused";
    "avail.engine.analytic.calls";
    "avail.engine.memoized.calls";
    "avail.engine.exact.calls";
    "avail.exact.solve.fresh";
    "avail.exact.solve.incremental";
    "avail.memo.hits";
    "avail.memo.misses";
    "markov.birth_death.solves";
    "markov.gth.solves";
    "markov.banded.solves";
    "markov.power.solves";
    "markov.lu.solves";
    "markov.solver.fresh";
    "markov.solver.incremental";
    "markov.solver.fallback";
    "markov.solver.cached";
    "parallel.tasks.queued";
    "parallel.tasks.executed";
  ]

(* ------------------------------------------------------------------ *)
(* Configuration *)

type transport = Unix_socket of string | Tcp of { host : string; port : int }

type config = {
  transport : transport;
  jobs : int;
  dispatchers : int;
  queue_capacity : int;
  default_deadline_ms : float option;
  memo_capacity : int;
  span_capacity : int;
  send_timeout_s : float;
  log_path : string option;
  slo : Slo.config;
  trace_sample : float;
  trace_ring : int;
  trace_spans : int;
}

let default_config transport =
  {
    transport;
    jobs = Domain.recommended_domain_count ();
    dispatchers = 2;
    queue_capacity = 128;
    default_deadline_ms = None;
    memo_capacity = Memo.default_capacity;
    span_capacity = 4096;
    send_timeout_s = 10.;
    log_path = None;
    slo = Slo.default_config;
    trace_sample = 0.;
    trace_ring = 256;
    trace_spans = Telemetry.Trace.default_capacity;
  }

(* ------------------------------------------------------------------ *)
(* Connections *)

(* The write mutex orders response lines from concurrent dispatchers
   and makes close/write/shutdown mutually exclusive, so the fd is
   never used after it is closed (no fd-reuse races). [conn_open]
   means the fd has not been closed yet (only [close_conn] clears it);
   [write_dead] marks a connection whose client stopped reading or
   hung up, so further responses are dropped instead of retried. *)
type conn = {
  fd : Unix.file_descr;
  conn_id : int;  (** Monotone accept sequence; keys the request log. *)
  write_mutex : Mutex.t;
  mutable conn_open : bool;
  mutable write_dead : bool;
}

type job = {
  conn : conn;
  request : Protocol.request;
  enqueued_at : float;
  lifecycle : Lifecycle.t;
}

(* Searches record candidate fates into an ambient provenance trail
   (process-global), so a trail-installed search must not overlap any
   other search: plain searches take the gate shared, [explain] takes
   it exclusive. *)
type search_gate = {
  g_mutex : Mutex.t;
  g_cond : Condition.t;
  mutable g_readers : int;
  mutable g_writer : bool;
  mutable g_writers_waiting : int;
      (* Writer-preference: new readers also wait while a writer is
         queued, so sustained design/frontier traffic cannot starve an
         [explain] request indefinitely. *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  port : int option;
  queue : job Bounded_queue.t;
  pool : Pool.t;
  memo : Memo.t;
  search_config : Aved_search.Search_config.t;
  specs : Spec_cache.t;
  registry : Telemetry.t;
  gate : search_gate;
  slo : Slo.t;
  traces : Trace_store.t;
  exemplars : Exemplars.t;
  log : Request_log.t option;
  started_at : float;
  stopping : bool Atomic.t;
  snapshot_requested : bool Atomic.t; (* set by SIGUSR1 *)
  next_conn_id : int Atomic.t;
  queue_high_water : int Atomic.t;
  dispatchers_busy : int Atomic.t;
  state_mutex : Mutex.t;
  mutable dispatcher_threads : Thread.t list;
  mutable reader_threads : Thread.t list;
  mutable conns : conn list;
}

let locked t f =
  Mutex.lock t.state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_mutex) f

(* Writes go straight to the fd so the SO_SNDTIMEO set at accept time
   bounds them: a client that sends requests but never reads its socket
   makes the write fail with EAGAIN after the timeout instead of
   wedging a dispatcher forever. On any write failure the socket is
   shut down, which wakes the (possibly blocked) reader thread so it
   runs [close_conn] and frees the fd. *)
let send_line conn line =
  Mutex.lock conn.write_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.write_mutex) @@ fun () ->
  if conn.conn_open && not conn.write_dead then begin
    let data = line ^ "\n" in
    let len = String.length data in
    let rec write_from off =
      if off < len then
        match Unix.write_substring conn.fd data off (len - off) with
        | wrote -> write_from (off + wrote)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_from off
    in
    try write_from 0
    with Unix.Unix_error _ | Sys_error _ ->
      conn.write_dead <- true;
      (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ())
  end

let close_conn t conn =
  Mutex.lock conn.write_mutex;
  if conn.conn_open then begin
    conn.conn_open <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.unlock conn.write_mutex;
    Telemetry.Counter.incr connections_closed;
    locked t (fun () ->
        t.conns <- List.filter (fun c -> c != conn) t.conns;
        Telemetry.Gauge.set connections_live_gauge
          (float_of_int (List.length t.conns)))
  end
  else Mutex.unlock conn.write_mutex

let shutdown_conn conn =
  Mutex.lock conn.write_mutex;
  if conn.conn_open then begin
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.write_mutex

(* ------------------------------------------------------------------ *)
(* The search gate *)

let make_gate () =
  {
    g_mutex = Mutex.create ();
    g_cond = Condition.create ();
    g_readers = 0;
    g_writer = false;
    g_writers_waiting = 0;
  }

let with_shared g f =
  Mutex.lock g.g_mutex;
  while g.g_writer || g.g_writers_waiting > 0 do
    Condition.wait g.g_cond g.g_mutex
  done;
  g.g_readers <- g.g_readers + 1;
  Mutex.unlock g.g_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.g_mutex;
      g.g_readers <- g.g_readers - 1;
      if g.g_readers = 0 then Condition.broadcast g.g_cond;
      Mutex.unlock g.g_mutex)

let with_exclusive g f =
  Mutex.lock g.g_mutex;
  g.g_writers_waiting <- g.g_writers_waiting + 1;
  while g.g_writer || g.g_readers > 0 do
    Condition.wait g.g_cond g.g_mutex
  done;
  g.g_writers_waiting <- g.g_writers_waiting - 1;
  g.g_writer <- true;
  Mutex.unlock g.g_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock g.g_mutex;
      g.g_writer <- false;
      Condition.broadcast g.g_cond;
      Mutex.unlock g.g_mutex)

(* ------------------------------------------------------------------ *)
(* Parameter decoding *)

exception Bad_params of string

let bad_params fmt = Printf.ksprintf (fun m -> raise (Bad_params m)) fmt
let find_param params name = List.assoc_opt name params

let string_param params name =
  match find_param params name with
  | Some (Json.String s) -> Some s
  | Some _ -> bad_params "param %S must be a string" name
  | None -> None

let required_string params name =
  match string_param params name with
  | Some s -> s
  | None -> bad_params "missing required param %S" name

let number_param params name =
  match find_param params name with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | Some _ -> bad_params "param %S must be a number" name
  | None -> None

let int_param params name ~default =
  match find_param params name with
  | Some (Json.Int i) -> i
  | Some _ -> bad_params "param %S must be an integer" name
  | None -> default

let bool_param params name ~default =
  match find_param params name with
  | Some (Json.Bool b) -> b
  | Some _ -> bad_params "param %S must be a boolean" name
  | None -> default

let requirements_of_params params =
  let load = number_param params "load" in
  let downtime = number_param params "downtime_minutes" in
  let job_hours = number_param params "job_hours" in
  match (load, downtime, job_hours) with
  | Some load, Some minutes, None ->
      Model.Requirements.enterprise ~throughput:load
        ~max_annual_downtime:(Duration.of_minutes minutes)
  | None, None, Some hours ->
      Model.Requirements.finite_job
        ~max_execution_time:(Duration.of_hours hours)
  | _ ->
      raise
        (Bad_params
           "specify either \"load\" and \"downtime_minutes\", or \
            \"job_hours\" alone")

let load_checked t ~no_check ~infra_file ~service_file =
  let loaded = Spec_cache.load t.specs ~infra_file ~service_file in
  if (not no_check) && loaded.Spec_cache.check_errors <> [] then
    failwith
      (Printf.sprintf
         "static check failed with %d error(s); set \"no_check\":true to \
          override"
         (List.length loaded.Spec_cache.check_errors));
  (loaded.Spec_cache.infra, loaded.Spec_cache.service)

let resolve_tier service = function
  | Some name -> (
      match Model.Service.find_tier service name with
      | Some tier -> tier
      | None -> failwith (Printf.sprintf "no tier %S" name))
  | None -> List.hd service.Model.Service.tiers

(* ------------------------------------------------------------------ *)
(* Request lifecycle: SLO accounting and the structured log *)

(* The SLO covers the work verbs; monitoring traffic (health, stats,
   metrics) and lines that never parsed to a verb are excluded, so
   dashboard polling and port scanners cannot move the measured
   availability in either direction. *)
let slo_eligible_verb = function
  | "design" | "frontier" | "explain" | "check" -> true
  | _ -> false

(* Outcomes the SLO counts as served: a prompt, well-formed answer —
   including a user error, which is a correct answer to a bad request.
   Shed, deadline-exceeded, shutting-down and internal outcomes spend
   error budget, as does a served answer above the latency budget. *)
let outcome_served = function
  | "ok" | "user-error" | "bad-request" -> true
  | _ -> false

(* Close one request's lifecycle: record it against the SLO, observe
   the per-verb/per-stage histograms, and append the structured log
   record. Called exactly once per request line, on every path —
   answered, shed, refused, malformed. For sampled requests this is
   also where the finished span tree enters the trace ring and the
   latency exemplars are recorded. *)
let finish_lifecycle t lifecycle ~outcome =
  if slo_eligible_verb (Lifecycle.verb lifecycle) then
    Slo.record t.slo
      ~now:(Telemetry.now_seconds ())
      ~ok:(outcome_served outcome)
      ~latency_s:(Lifecycle.elapsed_s lifecycle);
  let record =
    Lifecycle.finish lifecycle ~outcome
      ~slow_threshold_s:t.config.slo.Slo.latency_budget_s
  in
  (match Lifecycle.trace lifecycle with
  | None -> ()
  | Some trace ->
      let now = Telemetry.now_seconds () in
      let trace_id = Lifecycle.trace_id lifecycle in
      let verb = Lifecycle.verb lifecycle in
      let total_s = Lifecycle.elapsed_s lifecycle in
      let dropped = Telemetry.Trace.dropped trace in
      if dropped > 0 then
        Telemetry.Counter.add trace_spans_dropped_counter dropped;
      let counters =
        match Telemetry.Trace.baseline trace with
        | [] -> [] (* never dispatched: shed, malformed, refused *)
        | baseline ->
            List.filter_map
              (fun (name, before) ->
                let delta =
                  Telemetry.Counter.read_by_name t.registry name - before
                in
                if delta <> 0 then Some (name, delta) else None)
              baseline
      in
      Trace_store.add t.traces
        {
          Trace_store.trace_id;
          verb;
          conn_id = Lifecycle.conn_id lifecycle;
          outcome;
          started_s = Lifecycle.started_s lifecycle;
          total_s;
          spans = Telemetry.Trace.spans trace;
          spans_dropped = dropped;
          counters;
        };
      Exemplars.observe t.exemplars
        ~metric:(Printf.sprintf "server.verb.%s.seconds" verb)
        ~trace_id ~value:total_s ~now;
      Exemplars.observe t.exemplars ~metric:"server.request.seconds"
        ~trace_id ~value:total_s ~now);
  Option.iter (fun log -> Request_log.write log record) t.log

(* ------------------------------------------------------------------ *)
(* Verb handlers — each renders through the same Api encoder the CLI's
   --json flag uses, which is what makes responses byte-identical. *)

let handle_design t params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let requirements = requirements_of_params params in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let report =
    with_shared t.gate @@ fun () ->
    Aved.Engine.design ~config:t.search_config ~pool:t.pool infra service
      requirements
  in
  Api.design_result_to_json (Api.design_result_of_report report)

let handle_frontier t params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let load =
    match number_param params "load" with
    | Some l -> l
    | None -> bad_params "missing required param %S" "load"
  in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let tier = resolve_tier service (string_param params "tier") in
  let frontier =
    with_shared t.gate @@ fun () ->
    Aved_search.Tier_search.frontier ~pool:t.pool t.search_config infra ~tier
      ~demand:load
  in
  Api.frontier_result_to_json
    (Api.frontier_result_of_candidates ~tier:tier.Model.Service.tier_name
       ~demand:load frontier)

let handle_explain t params =
  let infra_file = required_string params "infra_file" in
  let service_file = required_string params "service_file" in
  let no_check = bool_param params "no_check" ~default:false in
  let top = int_param params "top" ~default:5 in
  let requirements = requirements_of_params params in
  let infra, service = load_checked t ~no_check ~infra_file ~service_file in
  let explanation =
    with_exclusive t.gate @@ fun () ->
    let trail = Aved_search.Provenance.create () in
    let result =
      Aved_search.Provenance.with_trail trail @@ fun () ->
      Aved.Engine.design ~config:t.search_config ~pool:t.pool infra service
        requirements
    in
    Option.map
      (fun report ->
        Aved.Engine.explain ~top ~trail ~config:t.search_config infra service
          requirements report)
      result
  in
  Api.explain_result_to_json (Api.explain_result_of_explanation explanation)

let handle_check params =
  let files =
    match find_param params "files" with
    | Some (Json.List items) ->
        List.map
          (function
            | Json.String s -> s
            | _ -> bad_params "param %S must be a list of path strings" "files")
          items
    | Some _ -> bad_params "param %S must be a list of path strings" "files"
    | None -> bad_params "missing required param %S" "files"
  in
  if files = [] then bad_params "param %S must be non-empty" "files";
  Api.check_result_to_json
    (Api.check_result_of_diagnostics (Aved_check.Check.check_files files))

let handle_health () = Api.versioned [ ("status", Json.String "ok") ]

let handle_trace t params =
  let id = required_string params "trace_id" in
  match Trace_store.find t.traces id with
  | Some completed ->
      Api.versioned [ ("trace", Trace_store.to_json completed) ]
  | None ->
      failwith
        (Printf.sprintf
           "no completed trace %S: not sampled (see serve --trace-sample), \
            not finished yet, or evicted from the ring"
           id)

let histogram_json (s : Telemetry.Histogram.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float (Telemetry.Histogram.mean s));
      ("p50", Json.Float (Telemetry.Histogram.quantile_est s 0.5));
      ("p95", Json.Float (Telemetry.Histogram.quantile_est s 0.95));
      ("p99", Json.Float (Telemetry.Histogram.quantile_est s 0.99));
    ]

let span_totals spans =
  let totals = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Telemetry.span) ->
      if not (Hashtbl.mem totals s.span_name) then
        order := s.span_name :: !order;
      let calls, secs =
        Option.value (Hashtbl.find_opt totals s.span_name) ~default:(0, 0.)
      in
      Hashtbl.replace totals s.span_name (calls + 1, secs +. s.dur_s))
    spans;
  List.rev_map
    (fun name ->
      let calls, secs = Hashtbl.find totals name in
      ( name,
        Json.Obj
          [ ("calls", Json.Int calls); ("total_seconds", Json.Float secs) ] ))
    !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* GC, runtime, occupancy and SLO gauges are sampled here — at scrape
   time — rather than on the request path, so their cost is paid by
   whoever asks ([metrics], [stats], SIGUSR1), never by a request. *)
let set_runtime_gauges t =
  let gc = Gc.quick_stat () in
  Telemetry.Gauge.set gc_heap_words_gauge (float_of_int gc.Gc.heap_words);
  Telemetry.Gauge.set gc_major_words_gauge gc.Gc.major_words;
  Telemetry.Gauge.set gc_minor_words_gauge gc.Gc.minor_words;
  Telemetry.Gauge.set gc_major_collections_gauge
    (float_of_int gc.Gc.major_collections);
  Telemetry.Gauge.set gc_minor_collections_gauge
    (float_of_int gc.Gc.minor_collections);
  Telemetry.Gauge.set gc_compactions_gauge (float_of_int gc.Gc.compactions);
  Telemetry.Gauge.set process_cpu_gauge (Process_stats.cpu_seconds ());
  Option.iter
    (fun n -> Telemetry.Gauge.set process_fds_gauge (float_of_int n))
    (Process_stats.open_fds ());
  Option.iter
    (fun n -> Telemetry.Gauge.set process_threads_gauge (float_of_int n))
    (Process_stats.live_threads ());
  Telemetry.Gauge.set uptime_gauge (Telemetry.now_seconds () -. t.started_at);
  Telemetry.Gauge.set pool_domains_gauge (float_of_int t.config.jobs);
  Telemetry.Gauge.set dispatchers_total_gauge
    (float_of_int t.config.dispatchers);
  Telemetry.Gauge.set dispatchers_busy_gauge
    (float_of_int (Atomic.get t.dispatchers_busy));
  Telemetry.Gauge.set queue_depth_gauge
    (float_of_int (Bounded_queue.length t.queue));
  Telemetry.Gauge.set queue_capacity_gauge
    (float_of_int (Bounded_queue.capacity t.queue));
  Telemetry.Gauge.set queue_high_water_gauge
    (float_of_int (Atomic.get t.queue_high_water));
  Telemetry.Gauge.set memo_entries_gauge (float_of_int (Memo.length t.memo));
  Telemetry.Gauge.set spec_cache_entries_gauge
    (float_of_int (Spec_cache.length t.specs));
  Telemetry.Gauge.set connections_live_gauge
    (float_of_int (List.length (locked t (fun () -> t.conns))));
  let snap = Slo.snapshot t.slo ~now:(Telemetry.now_seconds ()) in
  Telemetry.Gauge.set slo_target_gauge snap.Slo.target;
  Telemetry.Gauge.set slo_window_gauge snap.Slo.window_seconds;
  Telemetry.Gauge.set slo_total_gauge (float_of_int snap.Slo.total);
  Telemetry.Gauge.set slo_bad_gauge (float_of_int snap.Slo.bad);
  Telemetry.Gauge.set slo_success_rate_gauge snap.Slo.success_rate;
  Telemetry.Gauge.set slo_burn_rate_gauge snap.Slo.burn_rate;
  Telemetry.Gauge.set slo_budget_remaining_gauge snap.Slo.budget_remaining;
  Telemetry.Gauge.set slo_met_gauge (if snap.Slo.met then 1. else 0.);
  snap

let slo_json (s : Slo.snapshot) =
  Json.Obj
    [
      ("target", Json.Float s.Slo.target);
      ("window_seconds", Json.Float s.Slo.window_seconds);
      ("requests", Json.Int s.Slo.total);
      ("good", Json.Int s.Slo.good);
      ("bad", Json.Int s.Slo.bad);
      ("success_rate", Json.Float s.Slo.success_rate);
      ("error_budget", Json.Float s.Slo.error_budget);
      ("burn_rate", Json.Float s.Slo.burn_rate);
      ("budget_remaining", Json.Float s.Slo.budget_remaining);
      ("met", Json.Bool s.Slo.met);
    ]

let handle_metrics t =
  ignore (set_runtime_gauges t);
  let body =
    Prometheus.render ~exemplars:t.exemplars
      ~extra_counters:
        [
          ("server.spans.dropped", Telemetry.spans_dropped t.registry);
          ("server.trace.ring.evictions", Trace_store.evictions t.traces);
        ]
      t.registry
  in
  Api.metrics_result_to_json
    { Api.metrics_content_type = Prometheus.content_type; body }

let handle_stats t =
  let memo_hits, memo_misses = Memo.stats t.memo in
  let snap = set_runtime_gauges t in
  Api.versioned
    [
      ( "uptime_seconds",
        Json.Float (Telemetry.now_seconds () -. t.started_at) );
      ( "queue",
        Json.Obj
          [
            ("depth", Json.Int (Bounded_queue.length t.queue));
            ("capacity", Json.Int (Bounded_queue.capacity t.queue));
            ("high_water", Json.Int (Atomic.get t.queue_high_water));
            ( "shed",
              Json.Int (Telemetry.Counter.read t.registry shed_counter) );
            ( "deadline_exceeded",
              Json.Int (Telemetry.Counter.read t.registry deadline_counter) );
          ] );
      ( "connections",
        Json.Obj
          [
            ("live", Json.Int (List.length (locked t (fun () -> t.conns))));
            ( "opened",
              Json.Int (Telemetry.Counter.read t.registry connections_opened)
            );
            ( "closed",
              Json.Int (Telemetry.Counter.read t.registry connections_closed)
            );
          ] );
      ("slo", slo_json snap);
      ( "memo",
        Json.Obj
          [
            ("entries", Json.Int (Memo.length t.memo));
            ("capacity", Json.Int (Memo.capacity t.memo));
            ("hits", Json.Int memo_hits);
            ("misses", Json.Int memo_misses);
            ("evictions", Json.Int (Memo.evictions t.memo));
          ] );
      ( "spec_cache",
        Json.Obj
          [
            ("entries", Json.Int (Spec_cache.length t.specs));
            ("hits", Json.Int (Spec_cache.hits t.specs));
            ("misses", Json.Int (Spec_cache.misses t.specs));
          ] );
      ( "counters",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Int v))
             (Telemetry.counters t.registry)) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun (name, v) -> (name, Json.Float v))
             (Telemetry.gauges t.registry)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, s) -> (name, histogram_json s))
             (Telemetry.histograms t.registry)) );
      ("spans", Json.Obj (span_totals (Telemetry.spans t.registry)));
      ("spans_dropped", Json.Int (Telemetry.spans_dropped t.registry));
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let handle_request t (job : job) =
  let request = job.request in
  let lc = job.lifecycle in
  Lifecycle.stamp lc "queue";
  Telemetry.Counter.incr (List.assoc request.Protocol.verb request_counters);
  let trace_id = Lifecycle.trace_id lc in
  (* [render] is deferred so serialization lands in the "encode" stage
     rather than being charged to whichever stage built the value. *)
  let respond ~outcome render =
    Lifecycle.stamp lc "handle";
    let line = render () in
    Lifecycle.stamp lc "encode";
    send_line job.conn line;
    Lifecycle.stamp lc "write";
    finish_lifecycle t lc ~outcome
  in
  let respond_ok result =
    Telemetry.Counter.incr responses_ok;
    respond ~outcome:"ok" (fun () ->
        Protocol.ok_response ~trace_id ~id:request.Protocol.id result)
  in
  let respond_error code message =
    Telemetry.Counter.incr responses_error;
    respond
      ~outcome:(Protocol.error_code_to_string code)
      (fun () ->
        Protocol.error_response ~trace_id ~id:request.Protocol.id code message)
  in
  let waited = Telemetry.now_seconds () -. job.enqueued_at in
  Telemetry.Histogram.observe queue_wait_seconds waited;
  let deadline_ms =
    match request.Protocol.deadline_ms with
    | Some ms -> Some ms
    | None -> t.config.default_deadline_ms
  in
  match deadline_ms with
  | Some ms when waited *. 1000. > ms ->
      Telemetry.Counter.incr deadline_counter;
      respond_error Protocol.Deadline_exceeded
        (Printf.sprintf
           "request waited %.0f ms in queue, over its %.0f ms deadline"
           (waited *. 1000.) ms)
  | Some _ | None -> (
      let verb_name = Protocol.verb_to_string request.Protocol.verb in
      (* Sampled requests: snapshot the attributed counters and install
         the trace context (parented under the handle-stage span) for
         the handler — every [with_span]/[with_trace_span] below this
         point, including on pool worker domains, lands in the tree. *)
      let trace_ctx = Lifecycle.handle_context lc in
      (match Lifecycle.trace lc with
      | Some trace ->
          Telemetry.Trace.set_baseline trace
            (List.map
               (fun name ->
                 (name, Telemetry.Counter.read_by_name t.registry name))
               attributed_counters)
      | None -> ());
      match
        Telemetry.Trace.with_context trace_ctx @@ fun () ->
        Telemetry.with_span ("serve." ^ verb_name) @@ fun () ->
        Telemetry.Histogram.time request_seconds @@ fun () ->
        match request.Protocol.verb with
        | Protocol.Design -> handle_design t request.Protocol.params
        | Protocol.Frontier -> handle_frontier t request.Protocol.params
        | Protocol.Explain -> handle_explain t request.Protocol.params
        | Protocol.Check -> handle_check request.Protocol.params
        | Protocol.Health -> handle_health ()
        | Protocol.Stats -> handle_stats t
        | Protocol.Metrics -> handle_metrics t
        | Protocol.Trace -> handle_trace t request.Protocol.params
      with
      | result -> respond_ok result
      | exception Bad_params message ->
          respond_error Protocol.Bad_request message
      | exception Failure message ->
          respond_error Protocol.User_error message
      | exception Sys_error message ->
          respond_error Protocol.User_error message
      | exception exn -> (
          match Aved_spec.Spec.error_to_string exn with
          | Some message -> respond_error Protocol.User_error message
          | None ->
              respond_error Protocol.Internal (Printexc.to_string exn)))

let rec dispatcher_loop t =
  match Bounded_queue.pop t.queue with
  | None -> ()
  | Some job ->
      Telemetry.Gauge.set queue_depth_gauge
        (float_of_int (Bounded_queue.length t.queue));
      Atomic.incr t.dispatchers_busy;
      Telemetry.Gauge.set dispatchers_busy_gauge
        (float_of_int (Atomic.get t.dispatchers_busy));
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr t.dispatchers_busy;
          Telemetry.Gauge.set dispatchers_busy_gauge
            (float_of_int (Atomic.get t.dispatchers_busy)))
        (fun () -> handle_request t job);
      dispatcher_loop t

(* ------------------------------------------------------------------ *)
(* Connection readers *)

(* Raise the high-water mark with a CAS loop: several readers can push
   concurrently and the mark must never move down. *)
let raise_high_water t depth =
  let rec bump () =
    let seen = Atomic.get t.queue_high_water in
    if depth > seen then
      if not (Atomic.compare_and_set t.queue_high_water seen depth) then
        bump ()
  in
  bump ();
  Telemetry.Gauge.set queue_high_water_gauge
    (float_of_int (Atomic.get t.queue_high_water))

let admit t conn lifecycle (request : Protocol.request) =
  let job =
    { conn; request; enqueued_at = Telemetry.now_seconds (); lifecycle }
  in
  Lifecycle.stamp lifecycle "admit";
  if Bounded_queue.try_push t.queue job then begin
    let depth = Bounded_queue.length t.queue in
    Telemetry.Gauge.set queue_depth_gauge (float_of_int depth);
    raise_high_water t depth
  end
  else if Bounded_queue.closed t.queue then begin
    Telemetry.Counter.incr responses_error;
    send_line conn
      (Protocol.error_response
         ~trace_id:(Lifecycle.trace_id lifecycle)
         ~id:request.Protocol.id Protocol.Shutting_down
         "server is draining; retry elsewhere");
    Lifecycle.stamp lifecycle "write";
    finish_lifecycle t lifecycle ~outcome:"shutting-down"
  end
  else begin
    Telemetry.Counter.incr shed_counter;
    Telemetry.Counter.incr responses_error;
    send_line conn
      (Protocol.error_response
         ~trace_id:(Lifecycle.trace_id lifecycle)
         ~id:request.Protocol.id Protocol.Overloaded
         (Printf.sprintf "admission queue is full (capacity %d); retry later"
            (Bounded_queue.capacity t.queue)));
    Lifecycle.stamp lifecycle "write";
    finish_lifecycle t lifecycle ~outcome:"overloaded"
  end

(* The head-sampling decision is taken here, once per request line:
   sampled requests get a span collector that rides the lifecycle to
   the dispatcher and into the engines. Deciding from the trace id
   keeps it deterministic and free of shared state. *)
let start_lifecycle t ~verb ~conn_id ~req_id ~now =
  let trace_id = Trace_id.fresh () in
  let trace =
    if Trace_id.sampled trace_id ~rate:t.config.trace_sample then begin
      Telemetry.Counter.incr traces_sampled_counter;
      Some
        (Telemetry.Trace.create ~capacity:t.config.trace_spans ~trace_id ())
    end
    else None
  in
  Lifecycle.start ?trace ~trace_id ~verb ~conn_id ~req_id ~now ()

let reader_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | line -> (
        let t_read = Telemetry.now_seconds () in
        (* The catch-all keeps a malicious or pathological line (e.g.
           one that trips an unexpected exception in parsing/admission)
           from killing the reader before [close_conn] runs and leaking
           the fd: answer Internal and drop the connection instead. *)
        match
          if String.trim line <> "" then
            match Protocol.request_of_line line with
            | Ok request ->
                let lifecycle =
                  start_lifecycle t
                    ~verb:(Protocol.verb_to_string request.Protocol.verb)
                    ~conn_id:conn.conn_id ~req_id:request.Protocol.id
                    ~now:t_read
                in
                Lifecycle.stamp lifecycle "parse";
                admit t conn lifecycle request
            | Error message ->
                (* Never parsed to a verb, so it still gets a trace id
                   and a log record, but under the reserved verb
                   "invalid" which the SLO ignores. *)
                let lifecycle =
                  start_lifecycle t ~verb:"invalid" ~conn_id:conn.conn_id
                    ~req_id:Json.Null ~now:t_read
                in
                Lifecycle.stamp lifecycle "parse";
                Telemetry.Counter.incr responses_error;
                send_line conn
                  (Protocol.error_response
                     ~trace_id:(Lifecycle.trace_id lifecycle)
                     ~id:Json.Null Protocol.Bad_request message);
                Lifecycle.stamp lifecycle "write";
                finish_lifecycle t lifecycle ~outcome:"bad-request"
        with
        | () -> loop ()
        | exception exn ->
            Telemetry.Counter.incr responses_error;
            send_line conn
              (Protocol.error_response ~id:Json.Null Protocol.Internal
                 (Printf.sprintf "unexpected error reading request: %s"
                    (Printexc.to_string exn))))
  in
  loop ();
  close_conn t conn

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

(* A leftover socket path may belong to a still-running daemon: probe
   it with a connect before unlinking, and refuse to steal a live
   endpoint. A stale path (nothing accepting) is removed; failure to
   remove it is a clean user error, not an uncaught Unix_error. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if live then
      failwith
        (Printf.sprintf "socket %S is in use by a running server" path);
    try Unix.unlink path
    with Unix.Unix_error (err, _, _) ->
      failwith
        (Printf.sprintf "cannot remove stale socket %S: %s" path
           (Unix.error_message err))
  end

let bind_listener = function
  | Unix_socket path ->
      claim_socket_path path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with exn ->
         Unix.close fd;
         raise exn);
      (fd, None)
  | Tcp { host; port } ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (inet, port));
         Unix.listen fd 64
       with exn ->
         Unix.close fd;
         raise exn);
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Some p
        | Unix.ADDR_UNIX _ -> None
      in
      (fd, port)

let create config =
  if config.dispatchers < 1 then
    invalid_arg "Server.create: dispatchers must be >= 1";
  (match Slo.validate_config config.slo with
  | Ok _ -> ()
  | Error msg -> failwith (Printf.sprintf "invalid SLO config: %s" msg));
  if
    Float.is_nan config.trace_sample
    || config.trace_sample < 0.
    || config.trace_sample > 1.
  then failwith "trace_sample must be within [0, 1]";
  if config.trace_ring < 1 then failwith "trace_ring must be >= 1";
  if config.trace_spans < 1 then failwith "trace_spans must be >= 1";
  (* SIGPIPE would kill the process on a write to a client that hung
     up; we detect that per-connection from the write error instead. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let registry = Telemetry.create ~span_capacity:config.span_capacity () in
  Telemetry.install registry;
  let memo = Memo.create ~capacity:config.memo_capacity () in
  let search_config =
    Aved_search.Search_config.default
    |> Aved_search.Search_config.with_jobs config.jobs
    |> Aved_search.Search_config.with_engine
         (Aved_avail.Evaluate.Memoized memo)
  in
  let log =
    match config.log_path with
    | None -> None
    | Some path -> (
        match Request_log.open_path path with
        | log -> Some log
        | exception Sys_error msg ->
            failwith (Printf.sprintf "cannot open request log: %s" msg))
  in
  let listen_fd, port =
    try bind_listener config.transport
    with exn ->
      Option.iter Request_log.close log;
      raise exn
  in
  let t =
    {
      config;
      listen_fd;
      port;
      queue = Bounded_queue.create ~capacity:config.queue_capacity;
      pool = Pool.create ~jobs:config.jobs;
      memo;
      search_config;
      specs = Spec_cache.create ();
      registry;
      gate = make_gate ();
      slo = Slo.create config.slo;
      traces = Trace_store.create ~capacity:config.trace_ring;
      exemplars = Exemplars.create ();
      log;
      started_at = Telemetry.now_seconds ();
      stopping = Atomic.make false;
      snapshot_requested = Atomic.make false;
      next_conn_id = Atomic.make 0;
      queue_high_water = Atomic.make 0;
      dispatchers_busy = Atomic.make 0;
      state_mutex = Mutex.create ();
      dispatcher_threads = [];
      reader_threads = [];
      conns = [];
    }
  in
  Option.iter
    (fun log ->
      Request_log.event log ~kind:"start"
        [
          ("pid", Json.Int (Unix.getpid ()));
          ("slo_target", Json.Float config.slo.Slo.target);
          ( "slo_latency_budget_ms",
            Json.Float (config.slo.Slo.latency_budget_s *. 1000.) );
          ("slo_window_s", Json.Float config.slo.Slo.window_s);
        ])
    t.log;
  t.dispatcher_threads <-
    List.init config.dispatchers (fun _ -> Thread.create dispatcher_loop t);
  t

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  (* SIGUSR1 requests a full metrics/GC snapshot. The handler only sets
     a flag; the accept loop performs the dump, since writing the log
     from a signal handler would not be async-signal-safe. *)
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Atomic.set t.snapshot_requested true))
  with Invalid_argument _ | Sys_error _ -> ()

let bound_port t = t.port

let accept_one t =
  match Unix.accept t.listen_fd with
  | exception
      Unix.Unix_error
        ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | fd, _addr ->
      (* Bound every response write so a client that never reads its
         socket cannot park a dispatcher inside [send_line]. *)
      (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.send_timeout_s
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let conn =
        { fd; conn_id = Atomic.fetch_and_add t.next_conn_id 1;
          write_mutex = Mutex.create (); conn_open = true;
          write_dead = false }
      in
      Telemetry.Counter.incr connections_opened;
      locked t (fun () ->
          t.conns <- conn :: t.conns;
          Telemetry.Gauge.set connections_live_gauge
            (float_of_int (List.length t.conns)));
      let thread = Thread.create (fun () -> reader_loop t conn) () in
      locked t (fun () -> t.reader_threads <- thread :: t.reader_threads)

(* SIGUSR1 snapshot: the full stats document (counters, gauges, SLO,
   GC) as one "snapshot" record in the structured log, or on stderr
   when no log is configured. *)
let dump_snapshot t =
  let stats = handle_stats t in
  match t.log with
  | Some log -> Request_log.event log ~kind:"snapshot" [ ("stats", stats) ]
  | None ->
      Printf.eprintf "aved serve snapshot: %s\n%!" (Json.to_string stats)

let run t =
  (* Accept with a short select timeout so [stop] — possibly set from a
     signal handler — is noticed promptly without any wakeup channel. *)
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      if Atomic.compare_and_set t.snapshot_requested true false then
        dump_snapshot t;
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ :: _, _, _ -> accept_one t);
      loop ()
    end
  in
  loop ();
  (* Drain: stop accepting, refuse new admissions, answer everything
     already admitted, then close connections and join every thread.
     Joining dispatchers first is what answers admitted requests; it
     cannot hang on a stalled client because SO_SNDTIMEO bounds every
     response write (the write fails and the connection is dropped). *)
  Unix.close t.listen_fd;
  (match t.config.transport with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Bounded_queue.close t.queue;
  List.iter Thread.join t.dispatcher_threads;
  List.iter shutdown_conn (locked t (fun () -> t.conns));
  List.iter Thread.join (locked t (fun () -> t.reader_threads));
  Pool.shutdown t.pool;
  Option.iter
    (fun log ->
      Request_log.event log ~kind:"stop"
        [
          ( "uptime_s",
            Json.Float (Telemetry.now_seconds () -. t.started_at) );
        ];
      Request_log.close log)
    t.log;
  Telemetry.uninstall ()
