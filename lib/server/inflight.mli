(** In-flight computation registry: the heart of request coalescing.

    The first request for a given content-hash key becomes the
    {e leader} and runs the computation; concurrent requests with the
    same key {e attach} as waiters and consume the leader's result
    when it completes. A thundering herd of [N] identical requests
    costs one search plus [N] envelope renders.

    The registry is generic in the waiter payload ['w] (the server
    stores enough per-request state to render a personalized envelope:
    connection, id, negotiated version, lifecycle handle) and the
    result ['r] (success or error — errors broadcast too, so waiters
    share the leader's fate rather than dangling).

    Thread-safety: [claim] and [complete] may race freely across
    threads. The server's discipline is stronger — all claims happen
    on the event-loop thread at admission time, completes on
    dispatcher threads — but the registry does not rely on it. *)

type ('w, 'r) t

val create : unit -> ('w, 'r) t

val claim : ('w, 'r) t -> key:string -> waiter:'w -> [ `Leader | `Attached ]
(** [`Leader]: no computation for [key] was in flight — the caller
    must run it and eventually call {!complete}. [`Attached]: the
    waiter was queued behind the in-flight leader and must NOT be
    dispatched; it will be answered by the leader's broadcast. *)

val complete :
  ('w, 'r) t -> key:string -> result:'r -> broadcast:('w -> 'r -> unit) -> int
(** Remove the entry for [key] and invoke [broadcast] on every waiter
    in attach order, outside the registry lock. Returns the waiter
    count. Requests for [key] arriving after [complete] start a fresh
    leader. Completing a key with no entry is a no-op returning 0. *)

val length : ('w, 'r) t -> int
(** Number of distinct computations currently in flight. *)
