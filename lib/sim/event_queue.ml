let events_counter = Aved_telemetry.Telemetry.Counter.make "sim.events"

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }
let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.heap in
  if t.size = capacity then begin
    let new_capacity = Stdlib.max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let push t ~time payload =
  if not (Float.is_finite time) then
    invalid_arg (Printf.sprintf "Event_queue.push: time %g" time);
  Aved_telemetry.Telemetry.Counter.incr events_counter;
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  (* Sift up. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before entry t.heap.(parent) then begin
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.heap.(t.size) in
      t.heap.(0) <- last;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < t.size && before t.heap.(left) t.heap.(!smallest) then
          smallest := left;
        if right < t.size && before t.heap.(right) t.heap.(!smallest) then
          smallest := right;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let clear t =
  t.size <- 0;
  t.heap <- [||]
