module Duration = Aved_units.Duration

type t = float

let of_fraction a =
  if not (Float.is_finite a) || a < 0. || a > 1. then
    invalid_arg (Printf.sprintf "Availability.of_fraction: %g" a)
  else a

let to_fraction a = a

let of_mtbf_mttr ~mtbf ~mttr =
  let up = Duration.seconds mtbf in
  let down = Duration.seconds mttr in
  if up <= 0. then invalid_arg "Availability.of_mtbf_mttr: mtbf must be positive";
  up /. (up +. down)

let perfect = 1.
let series parts = List.fold_left (fun acc a -> acc *. a) 1. parts

let parallel parts =
  1. -. List.fold_left (fun acc a -> acc *. (1. -. a)) 1. parts

(* Binomial tail P[X >= k], X ~ Binomial(n, a), evaluated by the
   recurrence on P[X = i] to avoid factorial overflow. *)
let k_out_of_n ~k ~n a =
  if n < 0 then invalid_arg "Availability.k_out_of_n: negative n";
  if k < 0 || k > n then
    invalid_arg (Printf.sprintf "Availability.k_out_of_n: k=%d n=%d" k n);
  if k = 0 then 1.
  else if a = 1. then 1.
  else if a = 0. then 0.
  else begin
    (* p_i = C(n,i) a^i (1-a)^(n-i); p_0 = (1-a)^n;
       p_{i+1} = p_i * (n-i)/(i+1) * a/(1-a). *)
    let ratio = a /. (1. -. a) in
    let p = ref (Float.pow (1. -. a) (float_of_int n)) in
    let tail = ref (if k = 0 then !p else 0.) in
    for i = 0 to n - 1 do
      p := !p *. (float_of_int (n - i) /. float_of_int (i + 1)) *. ratio;
      if i + 1 >= k then tail := !tail +. !p
    done;
    Float.min 1. !tail
  end

let annual_downtime a = Duration.of_years (1. -. a)

let of_annual_downtime d =
  let frac = Duration.years d in
  of_fraction (1. -. Float.min 1. frac)

let unavailability a = 1. -. a

let nines a =
  let u = 1. -. a in
  if u <= 0. then Float.infinity else -.Float.log10 u

let pp ppf a = Format.fprintf ppf "%.6f" a

let pp_nines ppf a =
  let n = nines a in
  if Float.is_finite n then Format.fprintf ppf "%.1f" n
  else Format.pp_print_string ppf "inf"
