(** Steady-state availability algebra.

    Availability is the long-run fraction of time a unit (or system) is
    up. These are the classical composition rules used when generating
    and sanity-checking the Markov availability models. *)

type t = private float
(** An availability, in [0, 1]. *)

val of_fraction : float -> t
(** Raises [Invalid_argument] outside [0, 1]. *)

val to_fraction : t -> float

val of_mtbf_mttr : mtbf:Aved_units.Duration.t -> mttr:Aved_units.Duration.t -> t
(** [mtbf /. (mtbf +. mttr)]. A zero [mttr] yields availability 1; a zero
    [mtbf] is rejected. *)

val perfect : t
val series : t list -> t
(** All units must be up (the paper's tier composition): product. *)

val parallel : t list -> t
(** At least one unit up: [1 − Π(1 − aᵢ)]. *)

val k_out_of_n : k:int -> n:int -> t -> t
(** Availability of a system of [n] independent identical units that is up
    when at least [k] are up (binomial tail). *)

val annual_downtime : t -> Aved_units.Duration.t
(** Expected downtime per year. *)

val of_annual_downtime : Aved_units.Duration.t -> t
(** Inverse of {!annual_downtime}; downtime is clamped to one year. *)

val unavailability : t -> float

val nines : t -> float
(** [−log₁₀(1 − a)]: 0.999 is 3 nines, 0.99999 is 5. [infinity] for a
    perfect availability. *)

val pp : Format.formatter -> t -> unit

val pp_nines : Format.formatter -> t -> unit
(** {!nines} to one decimal ("3.7"); ["inf"] when perfect. The shared
    formatter behind the [explain] and [frontier --explain] outputs. *)
