(** Continuous-time Markov chains.

    This module stands in for the external availability engines the paper
    interfaces with (Avanto, Mobius, Sharpe): an availability model is
    translated into a CTMC whose stationary distribution yields expected
    annual uptime and downtime. *)

type t
(** A finite CTMC with states numbered [0 .. num_states - 1]. *)

val create : int -> t
(** [create n] is an empty chain over [n] states (no transitions yet).
    Raises [Invalid_argument] when [n <= 0]. *)

val add_transition : t -> src:int -> dst:int -> rate:float -> unit
(** Adds [rate] to the transition rate from [src] to [dst]. Self-loops and
    non-positive rates are rejected with [Invalid_argument]. *)

val num_states : t -> int

val total_exit_rate : t -> int -> float
(** Sum of outgoing rates of a state. *)

val transitions : t -> (int * int * float) list
(** All transitions as [(src, dst, rate)], in insertion order, with
    repeated [add_transition] calls merged. *)

val generator : t -> Aved_linalg.Matrix.t
(** The generator matrix Q: off-diagonal rates, diagonal = −(row sum). *)

val stationary_gth : t -> Aved_linalg.Vector.t
(** Stationary distribution by Grassmann–Taksar–Heyman elimination —
    numerically stable (no subtractions), O(n³) time, O(n²) space.
    Intended for irreducible chains (every availability model here is
    one). On reducible chains: states that cannot reach state 0's
    communicating class receive probability 0, and if probability
    escapes state 0's class entirely (state 0 transient),
    [Invalid_argument] is raised. *)

val stationary_lu : t -> Aved_linalg.Vector.t
(** Stationary distribution by solving [πQ = 0, Σπ = 1] with LU.
    Raises [Aved_linalg.Matrix.Singular] on reducible chains. *)

val stationary : t -> Aved_linalg.Vector.t
(** The default solver ({!stationary_gth}). *)

val expected_reward : t -> reward:(int -> float) -> float
(** [expected_reward chain ~reward] is Σ π(s)·reward(s) under the
    stationary distribution. *)

val probability_in : t -> (int -> bool) -> float
(** Stationary probability mass of the states satisfying the predicate. *)

val mean_time_to_absorption :
  t -> absorbing:(int -> bool) -> start:int -> float
(** Expected time to first hit an absorbing state from [start], obtained
    by solving the linear system on the transient states. Returns [0.]
    when [start] is absorbing; raises [Aved_linalg.Matrix.Singular] when
    absorption is not certain. *)

val transient :
  t -> initial:Aved_linalg.Vector.t -> time:float -> epsilon:float ->
  Aved_linalg.Vector.t
(** State distribution after [time], starting from [initial], computed by
    uniformization with truncation error below [epsilon]. *)

type well_formedness = {
  max_row_residual : float;
      (** Largest |row sum| of the generator — 0 up to rounding for a
          well-formed chain. *)
  negative_rates : (int * int * float) list;
      (** Negative off-diagonal generator entries (impossible through
          {!add_transition}; guards external constructions). *)
  unreachable : int list;  (** States unreachable from state 0. *)
  cannot_reach_start : int list;
      (** States with no path back to state 0 — members of absorbing
          classes that trap stationary probability. *)
  no_exit : int list;  (** States with no outgoing transition at all. *)
}

val well_formedness : t -> well_formedness
(** Structural audit of the chain for the static checker: generator row
    sums, off-diagonal signs, and reachability to and from state 0 (the
    all-up state in availability models, which should communicate with
    every state). *)

val pp : Format.formatter -> t -> unit
