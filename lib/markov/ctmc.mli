(** Continuous-time Markov chains.

    This module stands in for the external availability engines the paper
    interfaces with (Avanto, Mobius, Sharpe): an availability model is
    translated into a CTMC whose stationary distribution yields expected
    annual uptime and downtime.

    Stationary analysis compiles the chain into a compressed sparse-row
    form ({!Sparse}) once per solve, runs a structural ergodicity check,
    and picks a backend by structure: dense GTH elimination for small
    chains, a banded elimination (bitwise identical to the dense one)
    when the transition structure is narrow, and uniformized power
    iteration for large sparse chains. The dense kernels stage their
    working set in the per-domain {!Aved_linalg.Workspace}, so a steady
    stream of solves allocates little beyond the result vectors. *)

type t
(** A finite CTMC with states numbered [0 .. num_states - 1]. *)

exception Non_ergodic of string
(** Raised by the stationary solvers — all of them, identically — when
    probability can escape state 0's communicating class: some state is
    reachable from state 0 but cannot return to it. States that are
    unreachable from state 0 altogether are tolerated and receive
    stationary probability 0. *)

val create : int -> t
(** [create n] is an empty chain over [n] states (no transitions yet).
    Raises [Invalid_argument] when [n <= 0]. *)

val add_transition : t -> src:int -> dst:int -> rate:float -> unit
(** Adds [rate] to the transition rate from [src] to [dst]. Self-loops and
    non-positive rates are rejected with [Invalid_argument]. *)

val num_states : t -> int

val total_exit_rate : t -> int -> float
(** Sum of outgoing rates of a state. *)

val transitions : t -> (int * int * float) list
(** All transitions as [(src, dst, rate)], in insertion order, with
    repeated [add_transition] calls merged. *)

val generator : t -> Aved_linalg.Matrix.t
(** The generator matrix Q: off-diagonal rates, diagonal = −(row sum). *)

val compile : t -> Sparse.t
(** The chain's transitions in compressed sparse-row form — what the
    stationary solvers and {!Solver} operate on. *)

type backend = Gth | Banded | Power | Lu
(** Stationary solver backends. [Gth] and [Banded] produce bitwise
    identical results; [Power] and [Lu] agree with them to solver
    tolerance. [Lu] is never auto-selected. *)

val select_backend : t -> backend
(** The backend {!stationary} would use for this chain: [Banded] when
    the bandwidth is narrow relative to the state count, [Gth] for small
    or dense chains, [Power] for large sparse ones. *)

val stationary : t -> Aved_linalg.Vector.t
(** Stationary distribution via the auto-selected backend. Raises
    {!Non_ergodic} as described there. *)

val stationary_with : backend -> t -> Aved_linalg.Vector.t
(** Stationary distribution via an explicit backend — primarily for the
    differential test harness. Same {!Non_ergodic} contract; [Lu] may
    additionally raise [Aved_linalg.Matrix.Singular] on chains with
    unreachable states (it cannot represent the "zero mass on islands"
    convention of the elimination backends). *)

val stationary_gth : t -> Aved_linalg.Vector.t
(** Stationary distribution by Grassmann–Taksar–Heyman elimination —
    numerically stable (no subtractions), O(n³) time, O(n²) workspace. *)

val stationary_lu : t -> Aved_linalg.Vector.t
(** Stationary distribution by solving [πQ = 0, Σπ = 1] with LU. *)

val stationary_power :
  ?start:Aved_linalg.Vector.t ->
  ?tol:float ->
  ?max_iters:int ->
  t ->
  Aved_linalg.Vector.t
(** Stationary distribution by uniformized power iteration, accepted
    when ‖πQ‖∞ ≤ [tol]·Λ (Λ = 1.02 × the largest exit rate; [tol]
    defaults to 1e-12). [start] warm-starts the iteration — the basis of
    incremental re-solving. Raises [Failure] when the iteration budget
    is exhausted before the residual test passes. *)

(** Incremental stationary solving for a chain whose transition
    {e structure} is fixed while individual rates change — the shape
    produced by perturbing one model parameter. The CSR form is compiled
    once; {!Solver.update_rate} edits rates in place and the next
    {!Solver.solve} warm-starts from the previous solution, falling back
    to a fresh elimination when refinement does not converge. *)
module Solver : sig
  type chain = t
  type t

  val create : chain -> t
  (** Compiles the chain and runs the ergodicity check (structure never
      changes afterwards, so the check holds for all rate updates).
      Raises {!Non_ergodic}. The solver does not alias the chain: later
      [add_transition] calls on the chain are not seen. *)

  val num_states : t -> int

  val update_rate : t -> src:int -> dst:int -> rate:float -> unit
  (** Overwrites the rate of an existing transition. Raises
      [Invalid_argument] if the transition is absent from the compiled
      structure or the rate is not finite and positive. *)

  val solve : t -> Aved_linalg.Vector.t
  (** The stationary distribution for the current rates. Returns a fresh
      copy; caches internally, so calling it twice without an
      intervening rate change is O(n). *)

  type counters = {
    fresh : int;  (** solves from scratch (first solve of a structure) *)
    incremental : int;  (** warm-started refinements that converged *)
    fallback : int;  (** refinements that fell back to elimination *)
    cached : int;  (** solves answered from the cached vector *)
  }

  val counters : unit -> counters
  (** Process-wide totals across all solver instances and domains; also
      exported as telemetry counters [markov.solver.*]. *)

  val reset_counters : unit -> unit
end

val expected_reward : t -> reward:(int -> float) -> float
(** [expected_reward chain ~reward] is Σ π(s)·reward(s) under the
    stationary distribution. *)

val probability_in : t -> (int -> bool) -> float
(** Stationary probability mass of the states satisfying the predicate. *)

val mean_time_to_absorption :
  t -> absorbing:(int -> bool) -> start:int -> float
(** Expected time to first hit an absorbing state from [start], obtained
    by solving the linear system on the transient states. Returns [0.]
    when [start] is absorbing; raises [Aved_linalg.Matrix.Singular] when
    absorption is not certain. *)

val transient :
  t -> initial:Aved_linalg.Vector.t -> time:float -> epsilon:float ->
  Aved_linalg.Vector.t
(** State distribution after [time], starting from [initial], computed by
    uniformization with truncation error below [epsilon]. *)

type well_formedness = {
  max_row_residual : float;
      (** Largest |row sum| of the generator — 0 up to rounding for a
          well-formed chain. *)
  negative_rates : (int * int * float) list;
      (** Negative off-diagonal generator entries (impossible through
          {!add_transition}; guards external constructions). *)
  unreachable : int list;  (** States unreachable from state 0. *)
  cannot_reach_start : int list;
      (** States with no path back to state 0 — members of absorbing
          classes that trap stationary probability. *)
  no_exit : int list;  (** States with no outgoing transition at all. *)
}

val well_formedness : t -> well_formedness
(** Structural audit of the chain for the static checker: generator row
    sums, off-diagonal signs, and reachability to and from state 0 (the
    all-up state in availability models, which should communicate with
    every state). *)

val pp : Format.formatter -> t -> unit
