(** Birth–death chains in closed form.

    The paper's simplified availability model for a tier is a birth–death
    chain on the number of failed resources. Its stationary distribution
    has the classical product form, which this module evaluates directly —
    O(n) instead of the O(n³) general solver, which matters inside the
    design-search loop. *)

type t

val create : up:float array -> down:float array -> t
(** [create ~up ~down] describes a chain on states [0 .. n] where
    [up.(k)] is the rate from [k] to [k+1] (for [0 <= k < n]) and
    [down.(k)] is the rate from [k+1] to [k]. The arrays must have equal
    length; rates must be non-negative and finite, and every state
    reachable from 0 must be able to return (i.e. [down.(k) > 0] whenever
    some probability can reach state [k+1]). *)

val num_states : t -> int
(** Number of states, [n + 1]. *)

val stationary : t -> float array
(** The stationary distribution. States made unreachable by a zero
    up-rate below them get probability 0. *)

val expected_reward : t -> reward:(int -> float) -> float
(** Stationary expectation [Σ_k π_k · reward k] — the occupancy export
    used to report quantities like the mean number of failed resources
    (mirrors {!Ctmc.expected_reward}). *)

val probability_at_least : t -> int -> float
(** [probability_at_least t k] is the stationary probability of being in
    a state [>= k]. *)

val to_ctmc : t -> Ctmc.t
(** The same chain as a general CTMC (for cross-validation). States with
    both rates zero are kept as isolated states. *)
