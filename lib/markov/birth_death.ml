module Telemetry = Aved_telemetry.Telemetry

let bd_solves = Telemetry.Counter.make "markov.birth_death.solves"

type t = { up : float array; down : float array }

let create ~up ~down =
  if Array.length up <> Array.length down then
    invalid_arg "Birth_death.create: rate arrays differ in length";
  let check name arr =
    Array.iter
      (fun r ->
        if not (Float.is_finite r) || r < 0. then
          invalid_arg (Printf.sprintf "Birth_death.create: bad %s rate %g" name r))
      arr
  in
  check "up" up;
  check "down" down;
  Array.iteri
    (fun k u ->
      if u > 0. && down.(k) = 0. then
        invalid_arg
          (Printf.sprintf
             "Birth_death.create: state %d reachable but cannot return" (k + 1)))
    up;
  { up; down }

let num_states t = Array.length t.up + 1

(* pi_{k+1} = pi_k * up_k / down_k; normalize. Computed with a running
   maximum subtraction in log space to stay finite for stiff rates. *)
let stationary t =
  Telemetry.Counter.incr bd_solves;
  Telemetry.with_trace_span "markov.birth_death.solve" @@ fun () ->
  let n = Array.length t.up in
  let log_pi = Array.make (n + 1) Float.neg_infinity in
  log_pi.(0) <- 0.;
  for k = 0 to n - 1 do
    if t.up.(k) > 0. && log_pi.(k) > Float.neg_infinity then
      log_pi.(k + 1) <- log_pi.(k) +. log t.up.(k) -. log t.down.(k)
  done;
  let max_log = Array.fold_left Float.max Float.neg_infinity log_pi in
  let unnorm =
    Array.map
      (fun l -> if l = Float.neg_infinity then 0. else exp (l -. max_log))
      log_pi
  in
  let total = Array.fold_left ( +. ) 0. unnorm in
  Array.map (fun p -> p /. total) unnorm

let expected_reward t ~reward =
  let pi = stationary t in
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (p *. reward k)) pi;
  !acc

let probability_at_least t k =
  let pi = stationary t in
  let acc = ref 0. in
  for s = Stdlib.max 0 k to Array.length pi - 1 do
    acc := !acc +. pi.(s)
  done;
  !acc

let to_ctmc t =
  let chain = Ctmc.create (num_states t) in
  Array.iteri
    (fun k rate ->
      if rate > 0. then Ctmc.add_transition chain ~src:k ~dst:(k + 1) ~rate)
    t.up;
  Array.iteri
    (fun k rate ->
      if rate > 0. then Ctmc.add_transition chain ~src:(k + 1) ~dst:k ~rate)
    t.down;
  chain
