type t = {
  n : int;
  row_ptr : int array; (* length n + 1 *)
  col : int array; (* length nnz, sorted within each row *)
  rate : float array; (* length nnz *)
}

let of_adjacency ~n rates =
  if n <= 0 then invalid_arg (Printf.sprintf "Sparse.of_adjacency: %d states" n);
  if Array.length rates <> n then
    invalid_arg "Sparse.of_adjacency: adjacency dimension mismatch";
  let row_ptr = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    row_ptr.(s + 1) <- row_ptr.(s) + Hashtbl.length rates.(s)
  done;
  let nnz = row_ptr.(n) in
  let col = Array.make nnz 0 in
  let rate = Array.make nnz 0. in
  for s = 0 to n - 1 do
    let lo = row_ptr.(s) in
    (* Collect the row, then sort by destination so the layout does not
       depend on hash-table iteration order. *)
    let k = ref lo in
    Hashtbl.iter
      (fun dst r ->
        col.(!k) <- dst;
        rate.(!k) <- r;
        incr k)
      rates.(s);
    let hi = row_ptr.(s + 1) in
    (* Insertion sort: rows are short (a handful of transitions). *)
    for i = lo + 1 to hi - 1 do
      let c = col.(i) and r = rate.(i) in
      let j = ref (i - 1) in
      while !j >= lo && col.(!j) > c do
        col.(!j + 1) <- col.(!j);
        rate.(!j + 1) <- rate.(!j);
        decr j
      done;
      col.(!j + 1) <- c;
      rate.(!j + 1) <- r
    done
  done;
  { n; row_ptr; col; rate }

let num_states t = t.n
let nnz t = t.row_ptr.(t.n)

let bandwidth t =
  let b = ref 0 in
  for s = 0 to t.n - 1 do
    for k = t.row_ptr.(s) to t.row_ptr.(s + 1) - 1 do
      b := Stdlib.max !b (abs (s - t.col.(k)))
    done
  done;
  !b

let density t =
  if t.n <= 1 then 0.
  else float_of_int (nnz t) /. (float_of_int t.n *. float_of_int (t.n - 1))

let check_state t s =
  if s < 0 || s >= t.n then
    invalid_arg (Printf.sprintf "Sparse: state %d out of [0, %d)" s t.n)

let exit_rate t s =
  check_state t s;
  let acc = ref 0. in
  for k = t.row_ptr.(s) to t.row_ptr.(s + 1) - 1 do
    acc := !acc +. t.rate.(k)
  done;
  !acc

let slot t ~src ~dst =
  check_state t src;
  check_state t dst;
  let lo = ref t.row_ptr.(src) and hi = ref (t.row_ptr.(src + 1) - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col.(mid) in
    if c = dst then found := Some mid
    else if c < dst then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let check_slot t k =
  if k < 0 || k >= nnz t then
    invalid_arg (Printf.sprintf "Sparse: slot %d out of [0, %d)" k (nnz t))

let rate_at t k =
  check_slot t k;
  t.rate.(k)

let set_rate_at t k r =
  check_slot t k;
  if not (Float.is_finite r) || r <= 0. then
    invalid_arg (Printf.sprintf "Sparse.set_rate_at: rate %g" r);
  t.rate.(k) <- r

let iter_row t s f =
  check_state t s;
  for k = t.row_ptr.(s) to t.row_ptr.(s + 1) - 1 do
    f ~dst:t.col.(k) ~rate:t.rate.(k)
  done

let iter t f =
  for s = 0 to t.n - 1 do
    for k = t.row_ptr.(s) to t.row_ptr.(s + 1) - 1 do
      f ~src:s ~dst:t.col.(k) ~rate:t.rate.(k)
    done
  done
