(** Compressed-sparse-row adjacency of a CTMC's transition rates.

    Built once per chain from the hash-table adjacency of {!Ctmc}, it
    gives the solvers cache-friendly iteration, O(log degree) slot
    lookup for in-place rate updates, and the structural measures
    (bandwidth, density) that drive backend selection. Column indices
    are sorted within each row; every stored rate is positive. *)

type t

val of_adjacency : n:int -> (int, float) Hashtbl.t array -> t
(** [of_adjacency ~n rates] compiles per-source hash tables (as kept by
    [Ctmc]) into CSR form. Deterministic: rows are laid out in state
    order and columns sorted ascending, independent of hash-table
    iteration order. *)

val num_states : t -> int
val nnz : t -> int

val bandwidth : t -> int
(** Largest [|src - dst|] over the stored transitions; [0] for a chain
    with no transitions. *)

val density : t -> float
(** [nnz / (n * (n - 1))] — the filled fraction of the off-diagonal. *)

val exit_rate : t -> int -> float
(** Sum of the outgoing rates of a state, in column order. *)

val slot : t -> src:int -> dst:int -> int option
(** Index of the (src, dst) entry in the value array, if present.
    Binary search within the row. *)

val rate_at : t -> int -> float
val set_rate_at : t -> int -> float -> unit
(** Overwrite the rate in a slot found by {!slot}. Structure (which
    transitions exist) is immutable; only magnitudes change. *)

val iter_row : t -> int -> (dst:int -> rate:float -> unit) -> unit
(** Visit a state's outgoing transitions in ascending destination
    order. *)

val iter : t -> (src:int -> dst:int -> rate:float -> unit) -> unit
(** Visit every transition, rows in order, columns ascending. *)
