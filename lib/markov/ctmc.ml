module Matrix = Aved_linalg.Matrix
module Vector = Aved_linalg.Vector
module Workspace = Aved_linalg.Workspace
module Telemetry = Aved_telemetry.Telemetry

let gth_solves = Telemetry.Counter.make "markov.gth.solves"
let gth_seconds = Telemetry.Histogram.make "markov.gth.seconds"
let banded_solves = Telemetry.Counter.make "markov.banded.solves"
let power_solves = Telemetry.Counter.make "markov.power.solves"
let lu_solves = Telemetry.Counter.make "markov.lu.solves"
let lu_seconds = Telemetry.Histogram.make "markov.lu.seconds"
let solve_states = Telemetry.Histogram.make "markov.solve.states"

exception Non_ergodic of string

type t = {
  n : int;
  rates : (int, float) Hashtbl.t array; (* per source: dst -> rate *)
  mutable order : (int * int) list; (* first insertions, reversed *)
}

let create n =
  if n <= 0 then invalid_arg (Printf.sprintf "Ctmc.create: %d states" n);
  { n; rates = Array.init n (fun _ -> Hashtbl.create 4); order = [] }

let check_state t s what =
  if s < 0 || s >= t.n then
    invalid_arg (Printf.sprintf "Ctmc: %s state %d out of [0, %d)" what s t.n)

let add_transition t ~src ~dst ~rate =
  check_state t src "source";
  check_state t dst "destination";
  if src = dst then invalid_arg "Ctmc.add_transition: self-loop";
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg (Printf.sprintf "Ctmc.add_transition: rate %g" rate);
  match Hashtbl.find_opt t.rates.(src) dst with
  | Some existing -> Hashtbl.replace t.rates.(src) dst (existing +. rate)
  | None ->
      Hashtbl.add t.rates.(src) dst rate;
      t.order <- (src, dst) :: t.order

let num_states t = t.n

let total_exit_rate t s =
  check_state t s "source";
  Hashtbl.fold (fun _ rate acc -> acc +. rate) t.rates.(s) 0.

let transitions t =
  List.rev_map
    (fun (src, dst) -> (src, dst, Hashtbl.find t.rates.(src) dst))
    t.order

let generator t =
  let q = Matrix.create t.n t.n 0. in
  for s = 0 to t.n - 1 do
    Hashtbl.iter
      (fun dst rate ->
        Matrix.set q s dst rate;
        Matrix.set q s s (Matrix.get q s s -. rate))
      t.rates.(s)
  done;
  q

let compile t = Sparse.of_adjacency ~n:t.n t.rates

(* Ergodicity precheck shared by every stationary solver. A chain is
   accepted when every state reachable from state 0 can also return to
   it: then state 0's communicating class is the unique closed class and
   the stationary distribution is well defined, with probability 0 on
   any states outside it (harmless unreachable islands are tolerated —
   they carry no mass). Probability escaping into a trap is rejected
   with {!Non_ergodic} before any arithmetic runs, so all backends fail
   the same way on the same chains. *)
let check_ergodic csr =
  let n = Sparse.num_states csr in
  let queue = Queue.create () in
  let forward = Array.make n false in
  forward.(0) <- true;
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Sparse.iter_row csr s (fun ~dst ~rate:_ ->
        if not forward.(dst) then begin
          forward.(dst) <- true;
          Queue.add dst queue
        end)
  done;
  let rev = Array.make n [] in
  Sparse.iter csr (fun ~src ~dst ~rate:_ -> rev.(dst) <- src :: rev.(dst));
  let reverse = Array.make n false in
  reverse.(0) <- true;
  Queue.add 0 queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun src ->
        if not reverse.(src) then begin
          reverse.(src) <- true;
          Queue.add src queue
        end)
      rev.(s)
  done;
  for s = 0 to n - 1 do
    if forward.(s) && not reverse.(s) then
      raise
        (Non_ergodic
           (Printf.sprintf
              "Ctmc: state %d is reachable from state 0 but cannot return to \
               it (probability is trapped outside the recurrent class)"
              s))
  done

(* Grassmann–Taksar–Heyman elimination on the rate matrix. States are
   eliminated from the highest index down; the algorithm uses only
   additions, multiplications and divisions of non-negative quantities,
   which keeps it stable even for stiff chains (rates spanning many
   orders of magnitude, as with hardware MTBFs in days vs. failover
   times in seconds). The working triangle lives in the per-domain
   workspace, so repeated solves allocate only the result vector. *)
let gth_csr csr =
  let n = Sparse.num_states csr in
  let ws = Workspace.domain () in
  let q = Workspace.floats ws (n * n) in
  Bigarray.Array1.fill q 0.;
  Sparse.iter csr (fun ~src ~dst ~rate ->
      Bigarray.Array1.unsafe_set q ((src * n) + dst) rate);
  let exit_sums = Workspace.float_array ws n in
  for k = n - 1 downto 1 do
    let s = ref 0. in
    let base_k = k * n in
    for j = 0 to k - 1 do
      s := !s +. Bigarray.Array1.unsafe_get q (base_k + j)
    done;
    exit_sums.(k) <- !s;
    if !s > 0. then
      for i = 0 to k - 1 do
        let base_i = i * n in
        let qik = Bigarray.Array1.unsafe_get q (base_i + k) in
        if qik > 0. then
          for j = 0 to k - 1 do
            if j <> i then
              Bigarray.Array1.unsafe_set q (base_i + j)
                (Bigarray.Array1.unsafe_get q (base_i + j)
                +. qik
                   *. Bigarray.Array1.unsafe_get q (base_k + j)
                   /. !s)
          done
      done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let inflow = ref 0. in
    for i = 0 to k - 1 do
      inflow := !inflow +. (pi.(i) *. Bigarray.Array1.unsafe_get q ((i * n) + k))
    done;
    if exit_sums.(k) > 0. then pi.(k) <- !inflow /. exit_sums.(k)
    else if !inflow > 0. then
      raise (Non_ergodic "Ctmc.stationary_gth: reducible chain (closed class apart)")
    else pi.(k) <- 0.
  done;
  Vector.normalize_1 pi

(* Banded variant: with half-bandwidth [b] (every transition satisfies
   |src − dst| ≤ b), elimination of state k only touches rows and
   columns in [k − b, k − 1], so fill-in never leaves the band and the
   working set is n·(2b+1) instead of n². Every operation the dense
   kernel performs outside the band is an addition of exactly +0.0 to a
   non-negative value, so the result is bitwise identical to
   {!gth_csr}. *)
let gth_banded_csr csr ~half_bandwidth:b =
  let n = Sparse.num_states csr in
  let w = (2 * b) + 1 in
  let ws = Workspace.domain () in
  let q = Workspace.floats ws (n * w) in
  Bigarray.Array1.fill q 0.;
  (* Entry (i, j) lives at i·w + (j − i + b). *)
  Sparse.iter csr (fun ~src ~dst ~rate ->
      Bigarray.Array1.unsafe_set q ((src * w) + (dst - src + b)) rate);
  let exit_sums = Workspace.float_array ws n in
  for k = n - 1 downto 1 do
    let lo = Stdlib.max 0 (k - b) in
    let s = ref 0. in
    for j = lo to k - 1 do
      s := !s +. Bigarray.Array1.unsafe_get q ((k * w) + (j - k + b))
    done;
    exit_sums.(k) <- !s;
    if !s > 0. then
      for i = lo to k - 1 do
        let qik = Bigarray.Array1.unsafe_get q ((i * w) + (k - i + b)) in
        if qik > 0. then
          for j = lo to k - 1 do
            if j <> i then
              Bigarray.Array1.unsafe_set q
                ((i * w) + (j - i + b))
                (Bigarray.Array1.unsafe_get q ((i * w) + (j - i + b))
                +. qik
                   *. Bigarray.Array1.unsafe_get q ((k * w) + (j - k + b))
                   /. !s)
          done
      done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let inflow = ref 0. in
    for i = Stdlib.max 0 (k - b) to k - 1 do
      inflow :=
        !inflow +. (pi.(i) *. Bigarray.Array1.unsafe_get q ((i * w) + (k - i + b)))
    done;
    if exit_sums.(k) > 0. then pi.(k) <- !inflow /. exit_sums.(k)
    else if !inflow > 0. then
      raise (Non_ergodic "Ctmc.stationary_gth: reducible chain (closed class apart)")
    else pi.(k) <- 0.
  done;
  Vector.normalize_1 pi

(* Power iteration on the uniformized transition matrix
   P = I + Q/Λ, Λ = 1.02·max exit rate. Every state keeps a self-loop
   probability of at least 1 − 1/1.02, so P is aperiodic and the
   iteration converges for any chain that passes the ergodicity check.
   Acceptance is by residual: ‖πQ‖∞ ≤ tol·Λ, checked periodically so
   the common path stays a pure sparse sweep. *)
let power_csr ?start csr ~tol ~max_iters =
  let n = Sparse.num_states csr in
  let exit = Array.init n (fun s -> Sparse.exit_rate csr s) in
  let max_exit = Array.fold_left Float.max 0. exit in
  let initial () =
    match start with
    | Some v ->
        if Array.length v <> n then
          invalid_arg "Ctmc.stationary_power: start dimension mismatch";
        Array.copy v
    | None ->
        let v = Array.make n 0. in
        v.(0) <- 1.;
        v
  in
  if max_exit = 0. then initial ()
  else begin
    let lambda = 1.02 *. max_exit in
    let residual = Array.make n 0. in
    let residual_ok v =
      Array.fill residual 0 n 0.;
      for s = 0 to n - 1 do
        residual.(s) <- residual.(s) -. (v.(s) *. exit.(s));
        Sparse.iter_row csr s (fun ~dst ~rate ->
            residual.(dst) <- residual.(dst) +. (v.(s) *. rate))
      done;
      Vector.norm_inf residual <= tol *. lambda
    in
    let v = ref (initial ()) in
    let next = ref (Array.make n 0.) in
    let converged = ref (residual_ok !v) in
    let iters = ref 0 in
    while (not !converged) && !iters < max_iters do
      let cur = !v and out = !next in
      for s = 0 to n - 1 do
        out.(s) <- cur.(s) *. (1. -. (exit.(s) /. lambda))
      done;
      for s = 0 to n - 1 do
        if cur.(s) > 0. then
          Sparse.iter_row csr s (fun ~dst ~rate ->
              out.(dst) <- out.(dst) +. (cur.(s) *. rate /. lambda))
      done;
      (* Renormalize to stem drift from rounding. *)
      let total = ref 0. in
      for s = 0 to n - 1 do
        total := !total +. out.(s)
      done;
      if !total > 0. && Float.is_finite !total then begin
        let inv = 1. /. !total in
        for s = 0 to n - 1 do
          out.(s) <- out.(s) *. inv
        done
      end;
      v := out;
      next := cur;
      incr iters;
      if !iters mod 8 = 0 then converged := residual_ok !v
    done;
    if not !converged then converged := residual_ok !v;
    if not !converged then
      failwith
        (Printf.sprintf
           "Ctmc.stationary_power: no convergence after %d iterations \
            (residual above %g)"
           !iters (tol *. lambda));
    Vector.normalize_1 !v
  end

type backend = Gth | Banded | Power | Lu

(* Backend choice by structure. Dense and banded GTH give bitwise
   identical results, so the split between them is purely a speed
   heuristic; power iteration is reserved for chains too large for an
   O(n³) elimination, where it agrees with GTH to solver tolerance. *)
let select_backend_csr csr =
  let n = Sparse.num_states csr in
  let b = Sparse.bandwidth csr in
  if n > 32 && (2 * b) + 1 <= n / 6 then Banded
  else if n <= 256 then Gth
  else if Sparse.density csr < 0.02 then Power
  else Gth

let select_backend t = select_backend_csr (compile t)

let default_power_tol = 1e-12
let default_power_iters n = 10_000 + (200 * n)

let solve_csr backend csr =
  match backend with
  | Gth -> gth_csr csr
  | Banded -> gth_banded_csr csr ~half_bandwidth:(Sparse.bandwidth csr)
  | Power -> (
      let n = Sparse.num_states csr in
      try
        power_csr csr ~tol:default_power_tol ~max_iters:(default_power_iters n)
      with Failure _ -> gth_csr csr)
  | Lu -> assert false (* dispatched before solve_csr *)

let backend_name = function
  | Gth -> "gth"
  | Banded -> "banded"
  | Power -> "power"
  | Lu -> "lu"

let with_solve_telemetry counter histogram ~backend t f =
  Telemetry.with_trace_span ("markov.solve." ^ backend_name backend)
  @@ fun () ->
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr counter;
    Telemetry.Histogram.observe solve_states (float_of_int t.n);
    match histogram with
    | Some h -> Telemetry.Histogram.time h f
    | None -> f ()
  end
  else f ()

let stationary_gth t =
  let csr = compile t in
  check_ergodic csr;
  with_solve_telemetry gth_solves (Some gth_seconds) ~backend:Gth t (fun () ->
      gth_csr csr)

let lu_kernel t =
  let n = t.n in
  (* Solve Qᵀ x = 0 with the last equation replaced by Σ x = 1. *)
  let a = Matrix.transpose (generator t) in
  for j = 0 to n - 1 do
    Matrix.set a (n - 1) j 1.
  done;
  let b = Array.init n (fun i -> if i = n - 1 then 1. else 0.) in
  Matrix.solve a b

let stationary_lu t =
  check_ergodic (compile t);
  with_solve_telemetry lu_solves (Some lu_seconds) ~backend:Lu t (fun () ->
      lu_kernel t)

let stationary_power ?start ?(tol = default_power_tol) ?max_iters t =
  let csr = compile t in
  check_ergodic csr;
  let max_iters =
    match max_iters with Some m -> m | None -> default_power_iters t.n
  in
  with_solve_telemetry power_solves None ~backend:Power t (fun () ->
      power_csr ?start csr ~tol ~max_iters)

let stationary_with backend t =
  match backend with
  | Gth -> stationary_gth t
  | Lu -> stationary_lu t
  | Power -> stationary_power t
  | Banded ->
      let csr = compile t in
      check_ergodic csr;
      with_solve_telemetry banded_solves None ~backend:Banded t (fun () ->
          gth_banded_csr csr ~half_bandwidth:(Sparse.bandwidth csr))

let stationary t =
  let csr = compile t in
  check_ergodic csr;
  let backend = select_backend_csr csr in
  let counter, histogram =
    match backend with
    | Gth -> (gth_solves, Some gth_seconds)
    | Banded -> (banded_solves, None)
    | Power -> (power_solves, None)
    | Lu -> (lu_solves, Some lu_seconds)
  in
  with_solve_telemetry counter histogram ~backend t (fun () ->
      solve_csr backend csr)

module Solver = struct
  type chain = t

  type nonrec t = {
    csr : Sparse.t;
    mutable pi : Vector.t option; (* last accepted solution *)
    mutable dirty : bool;
  }

  let fresh_counter = Atomic.make 0
  let incremental_counter = Atomic.make 0
  let fallback_counter = Atomic.make 0
  let cached_counter = Atomic.make 0
  let tm_fresh = Telemetry.Counter.make "markov.solver.fresh"
  let tm_incremental = Telemetry.Counter.make "markov.solver.incremental"
  let tm_fallback = Telemetry.Counter.make "markov.solver.fallback"
  let tm_cached = Telemetry.Counter.make "markov.solver.cached"

  let bump atomic tm =
    Atomic.incr atomic;
    if Telemetry.enabled () then Telemetry.Counter.incr tm

  type counters = {
    fresh : int;
    incremental : int;
    fallback : int;
    cached : int;
  }

  let counters () =
    {
      fresh = Atomic.get fresh_counter;
      incremental = Atomic.get incremental_counter;
      fallback = Atomic.get fallback_counter;
      cached = Atomic.get cached_counter;
    }

  let reset_counters () =
    Atomic.set fresh_counter 0;
    Atomic.set incremental_counter 0;
    Atomic.set fallback_counter 0;
    Atomic.set cached_counter 0

  let create chain =
    let csr = compile chain in
    check_ergodic csr;
    { csr; pi = None; dirty = true }

  let num_states t = Sparse.num_states t.csr

  let update_rate t ~src ~dst ~rate =
    if not (Float.is_finite rate) || rate <= 0. then
      invalid_arg (Printf.sprintf "Ctmc.Solver.update_rate: rate %g" rate);
    match Sparse.slot t.csr ~src ~dst with
    | None ->
        invalid_arg
          (Printf.sprintf
             "Ctmc.Solver.update_rate: no transition %d -> %d in the compiled \
              structure"
             src dst)
    | Some k ->
        if Sparse.rate_at t.csr k <> rate then begin
          Sparse.set_rate_at t.csr k rate;
          t.dirty <- true
        end

  (* A perturbed chain's stationary vector is close to the previous one,
     so a handful of warm-started power sweeps usually reach an ‖πQ‖∞
     residual far below what any downstream consumer can observe. When
     they do not (large perturbation, unlucky spectrum), fall back to a
     fresh elimination rather than loop. *)
  let refine_tol = 1e-13
  let refine_iters = 400

  let solve t =
    match t.pi with
    | Some pi when not t.dirty ->
        bump cached_counter tm_cached;
        Array.copy pi
    | previous ->
        let pi =
          match previous with
          | Some warm -> (
              try
                let refined =
                  Telemetry.with_trace_span "markov.solver.incremental"
                    (fun () ->
                      power_csr ~start:warm t.csr ~tol:refine_tol
                        ~max_iters:refine_iters)
                in
                bump incremental_counter tm_incremental;
                refined
              with Failure _ ->
                bump fallback_counter tm_fallback;
                Telemetry.with_trace_span "markov.solver.fallback" (fun () ->
                    solve_csr (select_backend_csr t.csr) t.csr))
          | None ->
              bump fresh_counter tm_fresh;
              Telemetry.with_trace_span "markov.solver.fresh" (fun () ->
                  solve_csr (select_backend_csr t.csr) t.csr)
        in
        t.pi <- Some pi;
        t.dirty <- false;
        Array.copy pi
end

let expected_reward t ~reward =
  let pi = stationary t in
  let acc = ref 0. in
  for s = 0 to t.n - 1 do
    acc := !acc +. (pi.(s) *. reward s)
  done;
  !acc

let probability_in t pred =
  expected_reward t ~reward:(fun s -> if pred s then 1. else 0.)

let mean_time_to_absorption t ~absorbing ~start =
  check_state t start "start";
  if absorbing start then 0.
  else begin
    let transient_states =
      List.filter (fun s -> not (absorbing s)) (List.init t.n Fun.id)
    in
    let index = Hashtbl.create 16 in
    List.iteri (fun i s -> Hashtbl.add index s i) transient_states;
    let m = List.length transient_states in
    (* (-Q_TT) tau = 1 over the transient states. *)
    let a = Matrix.create m m 0. in
    List.iteri
      (fun i s ->
        Matrix.set a i i (total_exit_rate t s);
        Hashtbl.iter
          (fun dst rate ->
            match Hashtbl.find_opt index dst with
            | Some j -> Matrix.set a i j (Matrix.get a i j -. rate)
            | None -> ())
          t.rates.(s))
      transient_states;
    let tau = Matrix.solve a (Array.make m 1.) in
    tau.(Hashtbl.find index start)
  end

let transient t ~initial ~time ~epsilon =
  if Array.length initial <> t.n then
    invalid_arg "Ctmc.transient: initial distribution dimension mismatch";
  if time < 0. then invalid_arg "Ctmc.transient: negative time";
  if epsilon <= 0. then invalid_arg "Ctmc.transient: epsilon must be positive";
  let max_exit =
    List.fold_left
      (fun acc s -> Float.max acc (total_exit_rate t s))
      0.
      (List.init t.n Fun.id)
  in
  if max_exit = 0. || time = 0. then Array.copy initial
  else begin
    (* Uniformization: P = I + Q/Lambda, result = sum_k Poisson(Lambda t; k) v P^k. *)
    let lambda = max_exit *. 1.02 in
    let step v =
      let out = Array.make t.n 0. in
      for s = 0 to t.n - 1 do
        let stay = 1. -. (total_exit_rate t s /. lambda) in
        out.(s) <- out.(s) +. (v.(s) *. stay);
        Hashtbl.iter
          (fun dst rate -> out.(dst) <- out.(dst) +. (v.(s) *. rate /. lambda))
          t.rates.(s)
      done;
      out
    in
    let lt = lambda *. time in
    let result = Array.make t.n 0. in
    let v = ref (Array.copy initial) in
    (* Accumulate Poisson weights iteratively: w_0 = e^{-lt}. For large lt
       start from logs to avoid underflow. *)
    let log_w = ref (-.lt) in
    let accumulated = ref 0. in
    let k = ref 0 in
    while !accumulated < 1. -. epsilon && !k < 100_000 do
      let w = exp !log_w in
      if w > 0. then begin
        accumulated := !accumulated +. w;
        for s = 0 to t.n - 1 do
          result.(s) <- result.(s) +. (w *. !v.(s))
        done
      end;
      incr k;
      log_w := !log_w +. log lt -. log (float_of_int !k);
      v := step !v
    done;
    (* Assign the truncated tail to the final iterate to keep mass 1. *)
    let tail = 1. -. !accumulated in
    if tail > 0. then
      for s = 0 to t.n - 1 do
        result.(s) <- result.(s) +. (tail *. !v.(s))
      done;
    result
  end

type well_formedness = {
  max_row_residual : float;
  negative_rates : (int * int * float) list;
  unreachable : int list;
  cannot_reach_start : int list;
  no_exit : int list;
}

let well_formedness t =
  let q = generator t in
  let max_row_residual = ref 0. in
  let negative_rates = ref [] in
  for s = 0 to t.n - 1 do
    let row_sum = ref 0. in
    for d = 0 to t.n - 1 do
      let rate = Matrix.get q s d in
      row_sum := !row_sum +. rate;
      if d <> s && rate < 0. then
        negative_rates := (s, d, rate) :: !negative_rates
    done;
    max_row_residual := Float.max !max_row_residual (Float.abs !row_sum)
  done;
  (* Forward reachability from state 0 and reverse reachability to it.
     States outside the former are dead weight; states outside the
     latter form absorbing classes that trap stationary probability. *)
  let bfs neighbours =
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun d ->
          if not seen.(d) then begin
            seen.(d) <- true;
            Queue.add d queue
          end)
        (neighbours s)
    done;
    seen
  in
  let forward =
    bfs (fun s -> Hashtbl.fold (fun d _ acc -> d :: acc) t.rates.(s) [])
  in
  let reverse_adj = Array.make t.n [] in
  Array.iteri
    (fun src table ->
      Hashtbl.iter
        (fun dst _ -> reverse_adj.(dst) <- src :: reverse_adj.(dst))
        table)
    t.rates;
  let reverse = bfs (fun s -> reverse_adj.(s)) in
  let unmarked seen =
    List.filter (fun s -> not seen.(s)) (List.init t.n Fun.id)
  in
  let no_exit =
    List.filter (fun s -> Hashtbl.length t.rates.(s) = 0) (List.init t.n Fun.id)
  in
  {
    max_row_residual = !max_row_residual;
    negative_rates = List.rev !negative_rates;
    unreachable = unmarked forward;
    cannot_reach_start = unmarked reverse;
    no_exit;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>ctmc with %d states" t.n;
  List.iter
    (fun (src, dst, rate) ->
      Format.fprintf ppf "@,  %d -> %d @@ %g" src dst rate)
    (transitions t);
  Format.fprintf ppf "@]"
