module Matrix = Aved_linalg.Matrix
module Vector = Aved_linalg.Vector
module Telemetry = Aved_telemetry.Telemetry

let gth_solves = Telemetry.Counter.make "markov.gth.solves"
let gth_seconds = Telemetry.Histogram.make "markov.gth.seconds"
let lu_solves = Telemetry.Counter.make "markov.lu.solves"
let lu_seconds = Telemetry.Histogram.make "markov.lu.seconds"
let solve_states = Telemetry.Histogram.make "markov.solve.states"

type t = {
  n : int;
  rates : (int, float) Hashtbl.t array; (* per source: dst -> rate *)
  mutable order : (int * int) list; (* first insertions, reversed *)
}

let create n =
  if n <= 0 then invalid_arg (Printf.sprintf "Ctmc.create: %d states" n);
  { n; rates = Array.init n (fun _ -> Hashtbl.create 4); order = [] }

let check_state t s what =
  if s < 0 || s >= t.n then
    invalid_arg (Printf.sprintf "Ctmc: %s state %d out of [0, %d)" what s t.n)

let add_transition t ~src ~dst ~rate =
  check_state t src "source";
  check_state t dst "destination";
  if src = dst then invalid_arg "Ctmc.add_transition: self-loop";
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg (Printf.sprintf "Ctmc.add_transition: rate %g" rate);
  match Hashtbl.find_opt t.rates.(src) dst with
  | Some existing -> Hashtbl.replace t.rates.(src) dst (existing +. rate)
  | None ->
      Hashtbl.add t.rates.(src) dst rate;
      t.order <- (src, dst) :: t.order

let num_states t = t.n

let total_exit_rate t s =
  check_state t s "source";
  Hashtbl.fold (fun _ rate acc -> acc +. rate) t.rates.(s) 0.

let transitions t =
  List.rev_map
    (fun (src, dst) -> (src, dst, Hashtbl.find t.rates.(src) dst))
    t.order

let generator t =
  let q = Matrix.create t.n t.n 0. in
  for s = 0 to t.n - 1 do
    Hashtbl.iter
      (fun dst rate ->
        Matrix.set q s dst rate;
        Matrix.set q s s (Matrix.get q s s -. rate))
      t.rates.(s)
  done;
  q

(* Grassmann–Taksar–Heyman elimination on the rate matrix. States are
   eliminated from the highest index down; the algorithm uses only
   additions, multiplications and divisions of non-negative quantities,
   which keeps it stable even for stiff chains (rates spanning many
   orders of magnitude, as with hardware MTBFs in days vs. failover
   times in seconds). *)
let gth_kernel t =
  let n = t.n in
  let q = Array.make_matrix n n 0. in
  for s = 0 to n - 1 do
    Hashtbl.iter (fun dst rate -> q.(s).(dst) <- q.(s).(dst) +. rate) t.rates.(s)
  done;
  let exit_sums = Array.make n 0. in
  for k = n - 1 downto 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. q.(k).(j)
    done;
    exit_sums.(k) <- !s;
    if !s > 0. then
      for i = 0 to k - 1 do
        let qik = q.(i).(k) in
        if qik > 0. then
          for j = 0 to k - 1 do
            if j <> i then q.(i).(j) <- q.(i).(j) +. (qik *. q.(k).(j) /. !s)
          done
      done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let inflow = ref 0. in
    for i = 0 to k - 1 do
      inflow := !inflow +. (pi.(i) *. q.(i).(k))
    done;
    if exit_sums.(k) > 0. then pi.(k) <- !inflow /. exit_sums.(k)
    else if !inflow > 0. then
      invalid_arg "Ctmc.stationary_gth: reducible chain (closed class apart)"
    else pi.(k) <- 0.
  done;
  Vector.normalize_1 pi

let stationary_gth t =
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr gth_solves;
    Telemetry.Histogram.observe solve_states (float_of_int t.n);
    Telemetry.Histogram.time gth_seconds (fun () -> gth_kernel t)
  end
  else gth_kernel t

let lu_kernel t =
  let n = t.n in
  (* Solve Qᵀ x = 0 with the last equation replaced by Σ x = 1. *)
  let a = Matrix.transpose (generator t) in
  for j = 0 to n - 1 do
    Matrix.set a (n - 1) j 1.
  done;
  let b = Array.init n (fun i -> if i = n - 1 then 1. else 0.) in
  Matrix.solve a b

let stationary_lu t =
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr lu_solves;
    Telemetry.Histogram.observe solve_states (float_of_int t.n);
    Telemetry.Histogram.time lu_seconds (fun () -> lu_kernel t)
  end
  else lu_kernel t

let stationary = stationary_gth

let expected_reward t ~reward =
  let pi = stationary t in
  let acc = ref 0. in
  for s = 0 to t.n - 1 do
    acc := !acc +. (pi.(s) *. reward s)
  done;
  !acc

let probability_in t pred =
  expected_reward t ~reward:(fun s -> if pred s then 1. else 0.)

let mean_time_to_absorption t ~absorbing ~start =
  check_state t start "start";
  if absorbing start then 0.
  else begin
    let transient_states =
      List.filter (fun s -> not (absorbing s)) (List.init t.n Fun.id)
    in
    let index = Hashtbl.create 16 in
    List.iteri (fun i s -> Hashtbl.add index s i) transient_states;
    let m = List.length transient_states in
    (* (-Q_TT) tau = 1 over the transient states. *)
    let a = Matrix.create m m 0. in
    List.iteri
      (fun i s ->
        Matrix.set a i i (total_exit_rate t s);
        Hashtbl.iter
          (fun dst rate ->
            match Hashtbl.find_opt index dst with
            | Some j -> Matrix.set a i j (Matrix.get a i j -. rate)
            | None -> ())
          t.rates.(s))
      transient_states;
    let tau = Matrix.solve a (Array.make m 1.) in
    tau.(Hashtbl.find index start)
  end

let transient t ~initial ~time ~epsilon =
  if Array.length initial <> t.n then
    invalid_arg "Ctmc.transient: initial distribution dimension mismatch";
  if time < 0. then invalid_arg "Ctmc.transient: negative time";
  if epsilon <= 0. then invalid_arg "Ctmc.transient: epsilon must be positive";
  let max_exit =
    List.fold_left
      (fun acc s -> Float.max acc (total_exit_rate t s))
      0.
      (List.init t.n Fun.id)
  in
  if max_exit = 0. || time = 0. then Array.copy initial
  else begin
    (* Uniformization: P = I + Q/Lambda, result = sum_k Poisson(Lambda t; k) v P^k. *)
    let lambda = max_exit *. 1.02 in
    let step v =
      let out = Array.make t.n 0. in
      for s = 0 to t.n - 1 do
        let stay = 1. -. (total_exit_rate t s /. lambda) in
        out.(s) <- out.(s) +. (v.(s) *. stay);
        Hashtbl.iter
          (fun dst rate -> out.(dst) <- out.(dst) +. (v.(s) *. rate /. lambda))
          t.rates.(s)
      done;
      out
    in
    let lt = lambda *. time in
    let result = Array.make t.n 0. in
    let v = ref (Array.copy initial) in
    (* Accumulate Poisson weights iteratively: w_0 = e^{-lt}. For large lt
       start from logs to avoid underflow. *)
    let log_w = ref (-.lt) in
    let accumulated = ref 0. in
    let k = ref 0 in
    while !accumulated < 1. -. epsilon && !k < 100_000 do
      let w = exp !log_w in
      if w > 0. then begin
        accumulated := !accumulated +. w;
        for s = 0 to t.n - 1 do
          result.(s) <- result.(s) +. (w *. !v.(s))
        done
      end;
      incr k;
      log_w := !log_w +. log lt -. log (float_of_int !k);
      v := step !v
    done;
    (* Assign the truncated tail to the final iterate to keep mass 1. *)
    let tail = 1. -. !accumulated in
    if tail > 0. then
      for s = 0 to t.n - 1 do
        result.(s) <- result.(s) +. (tail *. !v.(s))
      done;
    result
  end

type well_formedness = {
  max_row_residual : float;
  negative_rates : (int * int * float) list;
  unreachable : int list;
  cannot_reach_start : int list;
  no_exit : int list;
}

let well_formedness t =
  let q = generator t in
  let max_row_residual = ref 0. in
  let negative_rates = ref [] in
  for s = 0 to t.n - 1 do
    let row_sum = ref 0. in
    for d = 0 to t.n - 1 do
      let rate = Matrix.get q s d in
      row_sum := !row_sum +. rate;
      if d <> s && rate < 0. then
        negative_rates := (s, d, rate) :: !negative_rates
    done;
    max_row_residual := Float.max !max_row_residual (Float.abs !row_sum)
  done;
  (* Forward reachability from state 0 and reverse reachability to it.
     States outside the former are dead weight; states outside the
     latter form absorbing classes that trap stationary probability. *)
  let bfs neighbours =
    let seen = Array.make t.n false in
    let queue = Queue.create () in
    seen.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      List.iter
        (fun d ->
          if not seen.(d) then begin
            seen.(d) <- true;
            Queue.add d queue
          end)
        (neighbours s)
    done;
    seen
  in
  let forward =
    bfs (fun s -> Hashtbl.fold (fun d _ acc -> d :: acc) t.rates.(s) [])
  in
  let reverse_adj = Array.make t.n [] in
  Array.iteri
    (fun src table ->
      Hashtbl.iter
        (fun dst _ -> reverse_adj.(dst) <- src :: reverse_adj.(dst))
        table)
    t.rates;
  let reverse = bfs (fun s -> reverse_adj.(s)) in
  let unmarked seen =
    List.filter (fun s -> not seen.(s)) (List.init t.n Fun.id)
  in
  let no_exit =
    List.filter (fun s -> Hashtbl.length t.rates.(s) = 0) (List.init t.n Fun.id)
  in
  {
    max_row_residual = !max_row_residual;
    negative_rates = List.rev !negative_rates;
    unreachable = unmarked forward;
    cannot_reach_start = unmarked reverse;
    no_exit;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>ctmc with %d states" t.n;
  List.iter
    (fun (src, dst, rate) ->
      Format.fprintf ppf "@,  %d -> %d @@ %g" src dst rate)
    (transitions t);
  Format.fprintf ppf "@]"
