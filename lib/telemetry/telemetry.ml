(* Sharding: cells live in per-shard arrays indexed by metric id; the
   shard is picked by domain id, so concurrent increments from the
   search pool's domains land on disjoint memory. Cells are plain
   (non-atomic) — distinct live domains always map to distinct shards
   in practice (domain ids grow monotonically and [num_shards] far
   exceeds any pool size), and a wrapped-id collision at worst loses a
   handful of increments of a diagnostic counter, never a result. *)

let num_shards = 256 (* power of two: shard = domain id land (n-1) *)
let max_metrics = 1024 (* per-kind id cap; later handles are dropped *)
let num_buckets = 64
let min_exponent = -30 (* bucket 0 upper bound = 2^-29 s ~ 1.9 ns *)

let now_seconds () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Process-wide metric-name interning (one id space per metric kind). *)

module Intern = struct
  type t = {
    mutex : Mutex.t;
    ids : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable next : int;
  }

  let create () =
    {
      mutex = Mutex.create ();
      ids = Hashtbl.create 64;
      names = Array.make 64 "";
      next = 0;
    }

  let intern t name =
    Mutex.lock t.mutex;
    let id =
      match Hashtbl.find_opt t.ids name with
      | Some id -> id
      | None ->
          let id = t.next in
          t.next <- id + 1;
          if id >= Array.length t.names then begin
            let grown = Array.make (2 * Array.length t.names) "" in
            Array.blit t.names 0 grown 0 (Array.length t.names);
            t.names <- grown
          end;
          t.names.(id) <- name;
          Hashtbl.add t.ids name id;
          id
    in
    Mutex.unlock t.mutex;
    id

  let find_opt t name =
    Mutex.lock t.mutex;
    let id = Hashtbl.find_opt t.ids name in
    Mutex.unlock t.mutex;
    id

  (* Snapshot of (id, name) pairs, bounded by the registry cell cap. *)
  let known t =
    Mutex.lock t.mutex;
    let n = Stdlib.min t.next max_metrics in
    let pairs = List.init n (fun id -> (id, t.names.(id))) in
    Mutex.unlock t.mutex;
    pairs

  let name t id =
    Mutex.lock t.mutex;
    let n = if id >= 0 && id < t.next then t.names.(id) else "?" in
    Mutex.unlock t.mutex;
    n
end

let counter_names = Intern.create ()
let gauge_names = Intern.create ()
let histogram_names = Intern.create ()

(* ------------------------------------------------------------------ *)
(* Registry *)

type hist_cell = {
  bucket_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type shard = {
  counter_cells : int array;
  hist_cells : hist_cell option array;
}

type span = { span_name : string; start_s : float; dur_s : float; tid : int }

(* One buffer per (domain, registry); registered with the registry on
   the domain's first span so the data survives the domain's exit. *)
type span_buffer = {
  buf_tid : int;
  mutable buf_spans : span list;
  mutable buf_len : int;
}

type t = {
  id : int;
  mutex : Mutex.t; (* guards shard creation and the buffer list *)
  shards : shard option array;
  gauge_cells : float array;
  gauge_set : bool array;
  mutable buffers : span_buffer list;
  span_capacity : int; (* per-buffer bound; max_int = unbounded *)
  spans_dropped : int Atomic.t;
}

let next_registry_id = Atomic.make 0

let create ?(span_capacity = max_int) () =
  if span_capacity < 0 then
    invalid_arg "Telemetry.create: span_capacity must be non-negative";
  {
    id = Atomic.fetch_and_add next_registry_id 1;
    mutex = Mutex.create ();
    shards = Array.make num_shards None;
    gauge_cells = Array.make max_metrics 0.;
    gauge_set = Array.make max_metrics false;
    buffers = [];
    span_capacity;
    spans_dropped = Atomic.make 0;
  }

let current : t option Atomic.t = Atomic.make None
let install t = Atomic.set current (Some t)
let uninstall () = Atomic.set current None
let enabled () = Atomic.get current <> None

let with_registry t f =
  install t;
  Fun.protect ~finally:uninstall f

let shard_of t =
  let i = (Domain.self () :> int) land (num_shards - 1) in
  match t.shards.(i) with
  | Some s -> s
  | None ->
      Mutex.lock t.mutex;
      let s =
        match t.shards.(i) with
        | Some s -> s
        | None ->
            let s =
              {
                counter_cells = Array.make max_metrics 0;
                hist_cells = Array.make max_metrics None;
              }
            in
            t.shards.(i) <- Some s;
            s
      in
      Mutex.unlock t.mutex;
      s

let fold_shards t f init =
  Array.fold_left
    (fun acc shard -> match shard with None -> acc | Some s -> f acc s)
    init t.shards

(* ------------------------------------------------------------------ *)
(* Counters *)

module Counter = struct
  type h = int

  let make name = Intern.intern counter_names name
  let name h = Intern.name counter_names h

  let add h n =
    match Atomic.get current with
    | None -> ()
    | Some t ->
        if h < max_metrics then begin
          let s = shard_of t in
          s.counter_cells.(h) <- s.counter_cells.(h) + n
        end

  let incr h = add h 1
  let read t h = fold_shards t (fun acc s -> acc + s.counter_cells.(h)) 0

  let read_by_name t name =
    match Intern.find_opt counter_names name with
    | Some h when h < max_metrics -> read t h
    | Some _ | None -> 0

  let per_shard t h =
    let cells = ref [] in
    Array.iteri
      (fun i shard ->
        match shard with
        | Some s when s.counter_cells.(h) <> 0 ->
            cells := (i, s.counter_cells.(h)) :: !cells
        | Some _ | None -> ())
      t.shards;
    List.rev !cells
end

(* ------------------------------------------------------------------ *)
(* Gauges (rare writes: one registry-level cell, last write wins) *)

module Gauge = struct
  type h = int

  let make name = Intern.intern gauge_names name

  let set h v =
    match Atomic.get current with
    | None -> ()
    | Some t ->
        if h < max_metrics then begin
          t.gauge_cells.(h) <- v;
          t.gauge_set.(h) <- true
        end

  let read t h =
    if h < max_metrics && t.gauge_set.(h) then Some t.gauge_cells.(h)
    else None
end

(* ------------------------------------------------------------------ *)
(* Histograms *)

module Histogram = struct
  type h = int

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
  }

  let make name = Intern.intern histogram_names name

  (* Bucket of a positive value v: floor(log2 v) clamped into the
     [min_exponent, min_exponent + num_buckets) window. *)
  let bucket_of v =
    if v <= 0. || not (Float.is_finite v) then 0
    else
      let _, e = Float.frexp v in
      (* v = m * 2^e with m in [0.5, 1): floor(log2 v) = e - 1. *)
      Stdlib.max 0 (Stdlib.min (num_buckets - 1) (e - 1 - min_exponent))

  let bucket_upper_bound i = Float.pow 2. (float_of_int (i + min_exponent + 1))

  (* Upper bound of the bucket [observe v] would land in — the [le]
     label an exemplar for [v] must attach to. *)
  let bound_of_value v = bucket_upper_bound (bucket_of v)

  let fresh_cell () =
    {
      bucket_counts = Array.make num_buckets 0;
      h_count = 0;
      h_sum = 0.;
      h_min = Float.infinity;
      h_max = Float.neg_infinity;
    }

  let observe h v =
    match Atomic.get current with
    | None -> ()
    | Some t ->
        if h < max_metrics then begin
          let s = shard_of t in
          let c =
            match s.hist_cells.(h) with
            | Some c -> c
            | None ->
                let c = fresh_cell () in
                s.hist_cells.(h) <- Some c;
                c
          in
          c.bucket_counts.(bucket_of v) <- c.bucket_counts.(bucket_of v) + 1;
          c.h_count <- c.h_count + 1;
          c.h_sum <- c.h_sum +. v;
          if v < c.h_min then c.h_min <- v;
          if v > c.h_max then c.h_max <- v
        end

  let time h f =
    match Atomic.get current with
    | None -> f ()
    | Some _ ->
        let t0 = now_seconds () in
        Fun.protect ~finally:(fun () -> observe h (now_seconds () -. t0)) f

  let read t h =
    let merged = Array.make num_buckets 0 in
    let count = ref 0 and sum = ref 0. in
    let vmin = ref Float.infinity and vmax = ref Float.neg_infinity in
    fold_shards t
      (fun () s ->
        match s.hist_cells.(h) with
        | None -> ()
        | Some c ->
            Array.iteri
              (fun i n -> merged.(i) <- merged.(i) + n)
              c.bucket_counts;
            count := !count + c.h_count;
            sum := !sum +. c.h_sum;
            if c.h_min < !vmin then vmin := c.h_min;
            if c.h_max > !vmax then vmax := c.h_max)
      ();
    let buckets = ref [] in
    for i = num_buckets - 1 downto 0 do
      if merged.(i) > 0 then
        buckets := (bucket_upper_bound i, merged.(i)) :: !buckets
    done;
    {
      count = !count;
      sum = !sum;
      min = (if !count = 0 then Float.nan else !vmin);
      max = (if !count = 0 then Float.nan else !vmax);
      buckets = !buckets;
    }

  let mean s = if s.count = 0 then Float.nan else s.sum /. float_of_int s.count

  let quantile s q =
    if s.count = 0 then Float.nan
    else begin
      let target = q *. float_of_int s.count in
      let rec scan acc = function
        | [] -> s.max
        | (ub, n) :: rest ->
            let acc = acc + n in
            if float_of_int acc >= target then ub else scan acc rest
      in
      scan 0 s.buckets
    end

  let quantile_est s q =
    if s.count = 0 then Float.nan
    else begin
      let target = q *. float_of_int s.count in
      let rec scan acc = function
        | [] -> s.max
        | (ub, n) :: rest ->
            let reached = acc + n in
            if float_of_int reached >= target then begin
              (* Log-bucketed: the bucket spans (ub/2, ub]. Interpolate
                 by rank position inside it, then clamp to the observed
                 extremes so a single-bucket summary reports a value
                 that was actually seen. *)
              let lb = ub /. 2. in
              let frac =
                Float.max 0.
                  (Float.min 1.
                     ((target -. float_of_int acc) /. float_of_int n))
              in
              Float.min s.max (Float.max s.min (lb +. (frac *. (ub -. lb))))
            end
            else scan reached rest
      in
      scan 0 s.buckets
    end
end

(* ------------------------------------------------------------------ *)
(* Per-request trace collectors *)

module Trace = struct
  type span = {
    id : int;
    parent : int;
    name : string;
    start_s : float;
    dur_s : float;
    tid : int;
    cpu_s : float;
    minor_words : float;
    major_words : float;
  }

  (* A cell is claimed at span *entry* and filled at exit. Claiming on
     entry (not exit) is what keeps trees well-formed under the
     capacity bound: a parent always claims before its children, and
     capacity never frees within one trace, so once a span is dropped
     every later entry — all its descendants included — is dropped
     too. Retained spans therefore always have retained parents. *)
  type cell = {
    c_id : int;
    c_parent : int;
    c_name : string;
    c_tid : int;
    c_start_s : float;
    mutable c_dur_s : float; (* < 0 until the span exits *)
    mutable c_cpu_s : float;
    mutable c_minor : float;
    mutable c_major : float;
  }

  type t = {
    trace_id : string;
    t_mutex : Mutex.t; (* guards cells/len/dropped *)
    mutable cells : cell list; (* newest first *)
    mutable len : int;
    capacity : int;
    mutable t_dropped : int;
    next_id : int Atomic.t;
    mutable baseline : (string * int) list;
  }

  type context = { trace : t; parent : int }

  let default_capacity = 2048

  let create ?(capacity = default_capacity) ~trace_id () =
    if capacity < 0 then
      invalid_arg "Telemetry.Trace.create: capacity must be non-negative";
    {
      trace_id;
      t_mutex = Mutex.create ();
      cells = [];
      len = 0;
      capacity;
      t_dropped = 0;
      next_id = Atomic.make 1;
      baseline = [];
    }

  let trace_id t = t.trace_id
  let alloc_span_id t = Atomic.fetch_and_add t.next_id 1
  let context t ~parent = { trace = t; parent }
  let set_baseline t pairs = t.baseline <- pairs
  let baseline t = t.baseline

  let dropped t =
    Mutex.lock t.t_mutex;
    let d = t.t_dropped in
    Mutex.unlock t.t_mutex;
    d

  (* Unconditional append, used for the handful of synthetic lifecycle
     spans the server records at finish time (root + one per stage) —
     those must survive even when handler spans hit the capacity. *)
  let record t ~id ~parent ~name ~start_s ~dur_s ~tid =
    let cell =
      {
        c_id = id;
        c_parent = parent;
        c_name = name;
        c_tid = tid;
        c_start_s = start_s;
        c_dur_s = dur_s;
        c_cpu_s = 0.;
        c_minor = 0.;
        c_major = 0.;
      }
    in
    Mutex.lock t.t_mutex;
    t.cells <- cell :: t.cells;
    t.len <- t.len + 1;
    Mutex.unlock t.t_mutex

  (* The ambient context is per-*thread*, not per-domain: the daemon's
     dispatcher threads share domain 0, so Domain.DLS would bleed one
     request's context into a concurrent request's spans. Threads are
     keyed by [Thread.id]; the table is only consulted while at least
     one context is installed anywhere ([installed] > 0), so with
     sampling off the whole machinery costs one atomic load. *)
  let installed = Atomic.make 0
  let tls_mutex = Mutex.create ()
  let tls : (int, context) Hashtbl.t = Hashtbl.create 64
  let self_key () = Thread.id (Thread.self ())

  let current () =
    if Atomic.get installed = 0 then None
    else begin
      let key = self_key () in
      Mutex.lock tls_mutex;
      let ctx = Hashtbl.find_opt tls key in
      Mutex.unlock tls_mutex;
      ctx
    end

  let swap_ctx key ctx =
    Mutex.lock tls_mutex;
    let prev = Hashtbl.find_opt tls key in
    (match ctx with
    | Some c -> Hashtbl.replace tls key c
    | None -> Hashtbl.remove tls key);
    (match (prev, ctx) with
    | None, Some _ -> Atomic.incr installed
    | Some _, None -> Atomic.decr installed
    | None, None | Some _, Some _ -> ());
    Mutex.unlock tls_mutex;
    prev

  let with_context ctx f =
    match ctx with
    | None when Atomic.get installed = 0 -> f ()
    | _ ->
        let key = self_key () in
        let saved = swap_ctx key ctx in
        Fun.protect ~finally:(fun () -> ignore (swap_ctx key saved)) f

  type open_span = {
    os_cell : cell option;
    os_key : int;
    os_saved : context option;
    os_cpu0 : float;
    os_minor0 : float;
    os_major0 : float;
  }

  let enter ctx name start_s =
    let t = ctx.trace in
    Mutex.lock t.t_mutex;
    let cell =
      if t.len >= t.capacity then begin
        t.t_dropped <- t.t_dropped + 1;
        None
      end
      else begin
        let c =
          {
            c_id = alloc_span_id t;
            c_parent = ctx.parent;
            c_name = name;
            c_tid = (Domain.self () :> int);
            c_start_s = start_s;
            c_dur_s = -1.;
            c_cpu_s = 0.;
            c_minor = 0.;
            c_major = 0.;
          }
        in
        t.cells <- c :: t.cells;
        t.len <- t.len + 1;
        Some c
      end
    in
    Mutex.unlock t.t_mutex;
    let key = self_key () in
    let saved =
      match cell with
      | Some c -> swap_ctx key (Some { trace = t; parent = c.c_id })
      | None -> swap_ctx key (Some ctx)
    in
    let minor0, _, major0 = Gc.counters () in
    {
      os_cell = cell;
      os_key = key;
      os_saved = saved;
      os_cpu0 = Sys.time ();
      os_minor0 = minor0;
      os_major0 = major0;
    }

  let exit_span os end_s =
    ignore (swap_ctx os.os_key os.os_saved);
    match os.os_cell with
    | None -> ()
    | Some c ->
        let minor1, _, major1 = Gc.counters () in
        c.c_cpu_s <- Sys.time () -. os.os_cpu0;
        c.c_minor <- minor1 -. os.os_minor0;
        c.c_major <- major1 -. os.os_major0;
        c.c_dur_s <- end_s -. c.c_start_s

  let spans t =
    Mutex.lock t.t_mutex;
    let cells = t.cells in
    Mutex.unlock t.t_mutex;
    List.filter_map
      (fun c ->
        if c.c_dur_s < 0. then None (* still open; skip *)
        else
          Some
            {
              id = c.c_id;
              parent = c.c_parent;
              name = c.c_name;
              start_s = c.c_start_s;
              dur_s = c.c_dur_s;
              tid = c.c_tid;
              cpu_s = c.c_cpu_s;
              minor_words = c.c_minor;
              major_words = c.c_major;
            })
      cells
    |> List.sort (fun a b ->
           match Float.compare a.start_s b.start_s with
           | 0 -> Stdlib.compare a.id b.id
           | n -> n)
end

(* ------------------------------------------------------------------ *)
(* Spans *)

let buffer_key : (int * span_buffer) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let push_span t span =
  let slot = Domain.DLS.get buffer_key in
  let buffer =
    match !slot with
    | Some (registry_id, b) when registry_id = t.id -> b
    | Some _ | None ->
        let b =
          { buf_tid = (Domain.self () :> int); buf_spans = []; buf_len = 0 }
        in
        Mutex.lock t.mutex;
        t.buffers <- b :: t.buffers;
        Mutex.unlock t.mutex;
        slot := Some (t.id, b);
        b
  in
  if buffer.buf_len >= t.span_capacity then
    (* Long-lived processes (the serve daemon) bound span memory; the
       counters and histograms keep aggregating past the cap. *)
    Atomic.incr t.spans_dropped
  else begin
    buffer.buf_spans <- span :: buffer.buf_spans;
    buffer.buf_len <- buffer.buf_len + 1
  end

let with_span name f =
  let registry = Atomic.get current in
  let tctx = Trace.current () in
  match (registry, tctx) with
  | None, None -> f ()
  | _ ->
      let t0 = now_seconds () in
      let entered = Option.map (fun c -> Trace.enter c name t0) tctx in
      Fun.protect
        ~finally:(fun () ->
          let t1 = now_seconds () in
          Option.iter (fun os -> Trace.exit_span os t1) entered;
          match registry with
          | None -> ()
          | Some t ->
              push_span t
                {
                  span_name = name;
                  start_s = t0;
                  dur_s = t1 -. t0;
                  tid = (Domain.self () :> int);
                })
        f

(* Trace-only span: records into the ambient request trace (when one
   is sampled) but never into the registry's per-domain buffers. For
   hot instrumentation points — solver backends, cache misses — that
   would flood [--trace] files and span buffers if recorded always. *)
let with_trace_span name f =
  match Trace.current () with
  | None -> f ()
  | Some c ->
      let t0 = now_seconds () in
      let os = Trace.enter c name t0 in
      Fun.protect ~finally:(fun () -> Trace.exit_span os (now_seconds ())) f

let spans t =
  Mutex.lock t.mutex;
  let buffers = t.buffers in
  Mutex.unlock t.mutex;
  List.concat_map (fun b -> List.rev b.buf_spans) buffers
  |> List.sort (fun a b -> Float.compare a.start_s b.start_s)

let spans_dropped t = Atomic.get t.spans_dropped

(* ------------------------------------------------------------------ *)
(* Readouts *)

let counters t =
  List.filter_map
    (fun (id, name) ->
      let v = Counter.read t id in
      if v <> 0 then Some (name, v) else None)
    (Intern.known counter_names)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  List.filter_map
    (fun (id, name) -> Option.map (fun v -> (name, v)) (Gauge.read t id))
    (Intern.known gauge_names)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  List.filter_map
    (fun (id, name) ->
      let s = Histogram.read t id in
      if s.Histogram.count > 0 then Some (name, s) else None)
    (Intern.known histogram_names)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_scaled ppf v =
  if Float.is_nan v then Format.fprintf ppf "%10s" "-"
  else if v >= 1. then Format.fprintf ppf "%9.3f s" v
  else if v >= 1e-3 then Format.fprintf ppf "%8.3f ms" (v *. 1e3)
  else if v >= 1e-6 then Format.fprintf ppf "%8.3f us" (v *. 1e6)
  else Format.fprintf ppf "%8.1f ns" (v *. 1e9)

(* Histograms are unit-agnostic; only names advertising seconds get the
   time-scaled rendering, everything else prints as a plain number. *)
let pp_histogram_value ~name ppf v =
  let is_time =
    let suffix = ".seconds" in
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  if is_time then pp_scaled ppf v
  else if Float.is_nan v then Format.fprintf ppf "%10s" "-"
  else Format.fprintf ppf "%10g" v

let pp_summary ppf t =
  let cs = counters t and gs = gauges t and hs = histograms t in
  let ss = spans t in
  Format.fprintf ppf "@[<v>telemetry summary@,";
  if cs <> [] then begin
    Format.fprintf ppf "@,counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-52s %12d@," name v)
      cs
  end;
  if gs <> [] then begin
    Format.fprintf ppf "@,gauges:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-52s %12g@," name v)
      gs
  end;
  if hs <> [] then begin
    Format.fprintf ppf "@,histograms:%62s@,"
      "count mean min max p50 p99";
    List.iter
      (fun (name, (s : Histogram.summary)) ->
        let pp = pp_histogram_value ~name in
        Format.fprintf ppf "  %-30s %8d %a %a %a %a %a@," name s.count pp
          (Histogram.mean s) pp s.min pp s.max pp
          (Histogram.quantile s 0.5)
          pp
          (Histogram.quantile s 0.99))
      hs
  end;
  if ss <> [] then begin
    (* Totals per span name: calls and cumulative time. *)
    let totals = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let calls, secs =
          Option.value
            (Hashtbl.find_opt totals s.span_name)
            ~default:(0, 0.)
        in
        Hashtbl.replace totals s.span_name (calls + 1, secs +. s.dur_s))
      ss;
    Format.fprintf ppf "@,spans:%43s@," "calls total";
    List.iter
      (fun (name, (calls, secs)) ->
        Format.fprintf ppf "  %-30s %8d %a@," name calls pp_scaled secs)
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []))
  end;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let json_escape name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    name;
  Buffer.contents b

let write_chrome_spans all oc =
  let base = match all with [] -> 0. | s :: _ -> s.start_s in
  output_string oc "{\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then output_string oc ",";
      Printf.fprintf oc
        "\n\
         {\"name\":\"%s\",\"cat\":\"aved\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
        (json_escape s.span_name)
        ((s.start_s -. base) *. 1e6)
        (s.dur_s *. 1e6) s.tid)
    all;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_chrome_trace t oc = write_chrome_spans (spans t) oc
