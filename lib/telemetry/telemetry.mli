(** Low-overhead metrics and span tracing for the search and
    availability engines.

    Metric handles ({!Counter.make}, {!Gauge.make}, {!Histogram.make})
    are interned process-wide by name and are normally created at
    module-initialization time. A registry ({!t}) holds the metric
    *values*; at most one registry is installed ({!install}) at a time,
    and every recording operation is a no-op costing a single branch
    when none is.

    Counter and histogram cells are sharded by domain id: an increment
    touches only the shard of the calling domain, so hot-path updates
    from the parallel search pool never contend on a shared cache line.
    Reads ({!Counter.read}, {!Histogram.read}) aggregate across shards.
    Recording never changes program results — telemetry observes the
    engines, it does not steer them. *)

type t
(** A metric registry: sharded counter/histogram cells, gauge cells and
    per-domain span buffers. *)

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] bounds the number of spans each domain's buffer
    retains (default: unbounded). Long-lived processes — the [aved
    serve] daemon keeps a registry installed for its whole lifetime —
    pass a cap so span memory stays bounded; spans past the cap are
    counted in {!spans_dropped} instead of retained, while counters and
    histograms keep aggregating. *)

val install : t -> unit
(** Make [t] the ambient registry recorded into by every metric
    operation, replacing any previous one. *)

val uninstall : unit -> unit
(** Remove the ambient registry; all metric operations become no-ops. *)

val enabled : unit -> bool
(** Whether a registry is installed. Use to skip work (name formatting,
    bulk flushes) that only matters when recording. *)

val with_registry : t -> (unit -> 'a) -> 'a
(** [with_registry t f] installs [t], runs [f] and uninstalls again
    (even on exception). *)

val now_seconds : unit -> float
(** Wall-clock seconds (the time source used for spans and timers). *)

module Counter : sig
  type h
  (** Handle to a named monotonic counter. *)

  val make : string -> h
  (** Intern a counter by name; idempotent per name. *)

  val name : h -> string
  val incr : h -> unit
  val add : h -> int -> unit

  val read : t -> h -> int
  (** Aggregate value across all shards. *)

  val read_by_name : t -> string -> int
  (** [read] by name; 0 when the name was never interned. *)

  val per_shard : t -> h -> (int * int) list
  (** [(shard, value)] for every shard with a nonzero value — the
      per-domain breakdown of a sharded counter. *)
end

module Gauge : sig
  type h

  val make : string -> h
  val set : h -> float -> unit

  val read : t -> h -> float option
  (** Last value set, or [None] when never set. *)
end

module Histogram : sig
  type h
  (** Handle to a log-bucketed histogram (base-2 buckets spanning
      roughly [2^-30, 2^33] — nanoseconds to decades when observing
      seconds). *)

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
        (** [(upper_bound, count)] for every nonempty bucket, in
            increasing bound order. *)
  }

  val make : string -> h
  val observe : h -> float -> unit

  val time : h -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its wall-clock duration in seconds.
      When no registry is installed the thunk runs untimed. *)

  val read : t -> h -> summary
  val mean : summary -> float

  val quantile : summary -> float -> float
  (** Upper bound of the bucket where the cumulative count crosses the
      quantile; [nan] on an empty summary. *)

  val quantile_est : summary -> float -> float
  (** Interpolated quantile estimate: linear within the crossing log
      bucket and clamped to the observed [[min, max]] range, so the
      error is bounded by one bucket's width (a factor of two) rather
      than always rounding up to the bucket bound. [nan] on an empty
      summary. This is what latency dashboards ([aved top], the
      [metrics] verb) report as p50/p95/p99. *)
end

type span = {
  span_name : string;
  start_s : float;  (** wall-clock seconds at entry *)
  dur_s : float;  (** duration in seconds *)
  tid : int;  (** id of the domain that ran the span *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk and record a completed span (also on exception).
    Nesting is positional: spans of one domain nest by time
    containment, which is how Chrome's tracing UI renders them. *)

val spans : t -> span list
(** All recorded spans, sorted by start time. *)

val spans_dropped : t -> int
(** Spans discarded because a buffer hit [span_capacity]. *)

val counters : t -> (string * int) list
(** All interned counters with nonzero aggregate value, sorted by
    name. *)

val gauges : t -> (string * float) list

val histograms : t -> (string * Histogram.summary) list
(** All interned histograms with at least one observation. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary table: counters, gauges, histograms
    (count/mean/min/max/p50/p99) and span totals by name. *)

val write_chrome_trace : t -> out_channel -> unit
(** Emit the recorded spans as Chrome [trace_event] JSON (one complete
    ["ph":"X"] event per span), loadable by [chrome://tracing] and
    [ui.perfetto.dev]. *)
