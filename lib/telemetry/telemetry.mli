(** Low-overhead metrics and span tracing for the search and
    availability engines.

    Metric handles ({!Counter.make}, {!Gauge.make}, {!Histogram.make})
    are interned process-wide by name and are normally created at
    module-initialization time. A registry ({!t}) holds the metric
    *values*; at most one registry is installed ({!install}) at a time,
    and every recording operation is a no-op costing a single branch
    when none is.

    Counter and histogram cells are sharded by domain id: an increment
    touches only the shard of the calling domain, so hot-path updates
    from the parallel search pool never contend on a shared cache line.
    Reads ({!Counter.read}, {!Histogram.read}) aggregate across shards.
    Recording never changes program results — telemetry observes the
    engines, it does not steer them. *)

type t
(** A metric registry: sharded counter/histogram cells, gauge cells and
    per-domain span buffers. *)

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] bounds the number of spans each domain's buffer
    retains (default: unbounded). Long-lived processes — the [aved
    serve] daemon keeps a registry installed for its whole lifetime —
    pass a cap so span memory stays bounded; spans past the cap are
    counted in {!spans_dropped} instead of retained, while counters and
    histograms keep aggregating. *)

val install : t -> unit
(** Make [t] the ambient registry recorded into by every metric
    operation, replacing any previous one. *)

val uninstall : unit -> unit
(** Remove the ambient registry; all metric operations become no-ops. *)

val enabled : unit -> bool
(** Whether a registry is installed. Use to skip work (name formatting,
    bulk flushes) that only matters when recording. *)

val with_registry : t -> (unit -> 'a) -> 'a
(** [with_registry t f] installs [t], runs [f] and uninstalls again
    (even on exception). *)

val now_seconds : unit -> float
(** Wall-clock seconds (the time source used for spans and timers). *)

module Counter : sig
  type h
  (** Handle to a named monotonic counter. *)

  val make : string -> h
  (** Intern a counter by name; idempotent per name. *)

  val name : h -> string
  val incr : h -> unit
  val add : h -> int -> unit

  val read : t -> h -> int
  (** Aggregate value across all shards. *)

  val read_by_name : t -> string -> int
  (** [read] by name; 0 when the name was never interned. *)

  val per_shard : t -> h -> (int * int) list
  (** [(shard, value)] for every shard with a nonzero value — the
      per-domain breakdown of a sharded counter. *)
end

module Gauge : sig
  type h

  val make : string -> h
  val set : h -> float -> unit

  val read : t -> h -> float option
  (** Last value set, or [None] when never set. *)
end

module Histogram : sig
  type h
  (** Handle to a log-bucketed histogram (base-2 buckets spanning
      roughly [2^-30, 2^33] — nanoseconds to decades when observing
      seconds). *)

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    buckets : (float * int) list;
        (** [(upper_bound, count)] for every nonempty bucket, in
            increasing bound order. *)
  }

  val make : string -> h
  val observe : h -> float -> unit

  val time : h -> (unit -> 'a) -> 'a
  (** Run the thunk and observe its wall-clock duration in seconds.
      When no registry is installed the thunk runs untimed. *)

  val read : t -> h -> summary
  val mean : summary -> float

  val quantile : summary -> float -> float
  (** Upper bound of the bucket where the cumulative count crosses the
      quantile; [nan] on an empty summary. *)

  val quantile_est : summary -> float -> float
  (** Interpolated quantile estimate: linear within the crossing log
      bucket and clamped to the observed [[min, max]] range, so the
      error is bounded by one bucket's width (a factor of two) rather
      than always rounding up to the bucket bound. [nan] on an empty
      summary. This is what latency dashboards ([aved top], the
      [metrics] verb) report as p50/p95/p99. *)

  val bound_of_value : float -> float
  (** Upper bound of the bucket {!observe} files [v] into — the [le]
      label a Prometheus exemplar for an observation must attach to. *)
end

(** Per-request trace collectors: parent/child span trees with resource
    attribution, threaded through the engines by an ambient
    {e trace context}.

    A collector ({!Trace.t}) belongs to one sampled request. A
    {!Trace.context} names a collector plus the span id new child spans
    attach under; it is installed per-{e thread} (dispatcher threads
    share a domain, so domain-local storage would bleed contexts across
    concurrent requests) and adopted by pool worker domains for the
    duration of each task ({!Aved_parallel.Pool.map} captures the
    spawning context). {!with_span} and {!with_trace_span} consult the
    ambient context: inside one, they allocate a child span, re-install
    the context with themselves as parent, and on exit record wall
    duration plus resource deltas — process CPU seconds ([Sys.time])
    and the executing domain's minor/major allocated words
    ([Gc.counters]).

    With no context installed anywhere the cost is one atomic load per
    potential span — sampling off means tracing is free. *)
module Trace : sig
  type span = {
    id : int;  (** Unique within the trace, > 0. *)
    parent : int;  (** Parent span id; 0 for the root. *)
    name : string;
    start_s : float;
    dur_s : float;
    tid : int;  (** Domain that ran the span. *)
    cpu_s : float;
        (** Process CPU seconds elapsed during the span (includes
            other domains' work — an attribution hint, not a cycle
            count). *)
    minor_words : float;  (** Executing domain's minor allocations. *)
    major_words : float;  (** Executing domain's major allocations. *)
  }

  type t
  (** A bounded span collector for one sampled request. *)

  type context
  (** A collector plus the span id to parent new spans under. *)

  val default_capacity : int
  (** 2048 — the default per-trace span bound. *)

  val create : ?capacity:int -> trace_id:string -> unit -> t
  (** [capacity] (default 2048) bounds retained spans. Span slots are
      claimed at entry, so under the bound dropped spans are always
      complete subtrees: a retained span's parent is always retained. *)

  val trace_id : t -> string

  val alloc_span_id : t -> int
  (** Reserve a span id (for synthetic spans recorded later via
      {!record} while children attach under it in the meantime). *)

  val record :
    t ->
    id:int ->
    parent:int ->
    name:string ->
    start_s:float ->
    dur_s:float ->
    tid:int ->
    unit
  (** Append a pre-measured span unconditionally (not counted against
      [capacity]); used for the per-request lifecycle stage spans. *)

  val context : t -> parent:int -> context

  val current : unit -> context option
  (** The calling thread's installed context, if any. *)

  val with_context : context option -> (unit -> 'a) -> 'a
  (** Install (or clear, on [None]) the ambient context for the
      calling thread while the thunk runs; always restores. *)

  val spans : t -> span list
  (** Completed spans sorted by start time (then id). Call after the
      request finishes; still-open spans are skipped. *)

  val dropped : t -> int
  (** Spans not retained because the collector hit [capacity]. *)

  val set_baseline : t -> (string * int) list -> unit
  (** Attach a counter snapshot taken at dispatch time; {!baseline}
      reads it back at finish to compute request-scoped deltas. *)

  val baseline : t -> (string * int) list
end

type span = {
  span_name : string;
  start_s : float;  (** wall-clock seconds at entry *)
  dur_s : float;  (** duration in seconds *)
  tid : int;  (** id of the domain that ran the span *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk and record a completed span (also on exception).
    Nesting is positional: spans of one domain nest by time
    containment, which is how Chrome's tracing UI renders them.
    Additionally, when the calling thread has an ambient
    {!Trace.context}, a child span with explicit parent links and
    resource deltas is recorded into that trace. *)

val with_trace_span : string -> (unit -> 'a) -> 'a
(** Like {!with_span} but records {e only} into the ambient
    {!Trace.context} (nothing when none is installed). For hot
    instrumentation points — solver backends, cache misses — that
    would flood the positional buffers if recorded unconditionally. *)

val spans : t -> span list
(** All recorded spans, sorted by start time. *)

val spans_dropped : t -> int
(** Spans discarded because a buffer hit [span_capacity]. *)

val counters : t -> (string * int) list
(** All interned counters with nonzero aggregate value, sorted by
    name. *)

val gauges : t -> (string * float) list

val histograms : t -> (string * Histogram.summary) list
(** All interned histograms with at least one observation. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary table: counters, gauges, histograms
    (count/mean/min/max/p50/p99) and span totals by name. *)

val write_chrome_trace : t -> out_channel -> unit
(** Emit the recorded spans as Chrome [trace_event] JSON (one complete
    ["ph":"X"] event per span), loadable by [chrome://tracing] and
    [ui.perfetto.dev]. *)

val write_chrome_spans : span list -> out_channel -> unit
(** The same trace_event writer over an explicit span list — what
    [aved trace --chrome] feeds a fetched request trace through. *)
