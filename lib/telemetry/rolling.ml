(* Ring of time buckets keyed by epoch = floor(now / bucket_s). Slot
   [epoch mod buckets] holds that epoch's counts; a slot carrying a
   stale epoch is reset on first touch, so no sweeper thread exists and
   an idle window costs nothing. *)

type t = {
  mutex : Mutex.t;
  bucket_s : float;
  buckets : int;
  epochs : int array; (* epoch currently stored in each slot; -1 empty *)
  good_counts : int array;
  bad_counts : int array;
}

type totals = { good : int; bad : int }

let create ~window_s ~buckets =
  if not (Float.is_finite window_s) || window_s <= 0. then
    invalid_arg "Rolling.create: window_s must be positive";
  if buckets < 1 then invalid_arg "Rolling.create: buckets must be >= 1";
  {
    mutex = Mutex.create ();
    bucket_s = window_s /. float_of_int buckets;
    buckets;
    epochs = Array.make buckets (-1);
    good_counts = Array.make buckets 0;
    bad_counts = Array.make buckets 0;
  }

let window_s t = t.bucket_s *. float_of_int t.buckets
let epoch_of t now = int_of_float (Float.floor (now /. t.bucket_s))

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~now ~good =
  let epoch = epoch_of t now in
  let slot = ((epoch mod t.buckets) + t.buckets) mod t.buckets in
  locked t @@ fun () ->
  if t.epochs.(slot) <> epoch then begin
    t.epochs.(slot) <- epoch;
    t.good_counts.(slot) <- 0;
    t.bad_counts.(slot) <- 0
  end;
  if good then t.good_counts.(slot) <- t.good_counts.(slot) + 1
  else t.bad_counts.(slot) <- t.bad_counts.(slot) + 1

let totals t ~now =
  let epoch = epoch_of t now in
  locked t @@ fun () ->
  let good = ref 0 and bad = ref 0 in
  for slot = 0 to t.buckets - 1 do
    let e = t.epochs.(slot) in
    (* Keep the last [buckets] epochs up to [now]; also keep anything
       stamped ahead of [now] (another thread's slightly later clock). *)
    if e >= 0 && e > epoch - t.buckets then begin
      good := !good + t.good_counts.(slot);
      bad := !bad + t.bad_counts.(slot)
    end
  done;
  { good = !good; bad = !bad }
