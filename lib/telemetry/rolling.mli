(** A rolling time window of good/bad event counts.

    The substrate of the serve daemon's SLO tracker: every answered
    request is recorded as good (served within its latency budget) or
    bad (error, shed, timed out, or too slow), and the window reports
    the counts over roughly the last [window_s] seconds.

    The window is a ring of [buckets] fixed-width time buckets. A
    bucket is recycled lazily when time moves past it, so {!record} is
    O(1) and allocation-free; {!totals} sums the buckets that still
    fall inside the window. Granularity is one bucket: the reported
    range covers between [window_s - window_s/buckets] and [window_s]
    seconds depending on where [now] falls inside the current bucket.

    Thread-safe (one mutex); callers pass [now] explicitly so the
    arithmetic is deterministic under test. *)

type t

val create : window_s:float -> buckets:int -> t
(** [window_s > 0.], [buckets >= 1]; raises [Invalid_argument]
    otherwise. Each bucket covers [window_s /. buckets] seconds. *)

val window_s : t -> float

type totals = { good : int; bad : int }

val record : t -> now:float -> good:bool -> unit
val totals : t -> now:float -> totals
(** Counts recorded within the window ending at [now]. Events recorded
    at a time later than [now] (clock skew between threads) are still
    counted; events older than the window are gone. *)
