(* Row-major storage in a flat float64 bigarray: element (i, j) lives
   at [i * cols + j]. Unboxed access, C-compatible layout, and the
   in-place kernels below make the steady path of the Markov solvers
   allocation-free when paired with a {!Workspace}. *)

type ba = Workspace.floats

type t = { rows : int; cols : int; data : ba }

let ba_create n : ba =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Matrix: bad dimensions %dx%d" rows cols)

let create rows cols v =
  check_dims rows cols;
  let data = ba_create (rows * cols) in
  Bigarray.Array1.fill data v;
  { rows; cols; data }

let init rows cols f =
  check_dims rows cols;
  let data = ba_create (rows * cols) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Bigarray.Array1.unsafe_set data ((i * cols) + j) (f i j)
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  if cols = 0 then invalid_arg "Matrix.of_rows: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Matrix.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  Bigarray.Array1.get m.data ((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  Bigarray.Array1.set m.data ((i * m.cols) + j) v

let unsafe_get m i j = Bigarray.Array1.unsafe_get m.data ((i * m.cols) + j)

let unsafe_set m i j v =
  Bigarray.Array1.unsafe_set m.data ((i * m.cols) + j) v

let to_rows m = Array.init m.rows (fun i -> Array.init m.cols (unsafe_get m i))

let copy m =
  let data = ba_create (m.rows * m.cols) in
  Bigarray.Array1.blit m.data data;
  { m with data }

let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

let check_same m a =
  if m.rows <> a.rows || m.cols <> a.cols then
    invalid_arg "Matrix: shape mismatch"

let map2_into dst f a b =
  for k = 0 to (a.rows * a.cols) - 1 do
    Bigarray.Array1.unsafe_set dst.data k
      (f
         (Bigarray.Array1.unsafe_get a.data k)
         (Bigarray.Array1.unsafe_get b.data k))
  done

let add m a =
  check_same m a;
  let out = { m with data = ba_create (m.rows * m.cols) } in
  map2_into out ( +. ) m a;
  out

let sub m a =
  check_same m a;
  let out = { m with data = ba_create (m.rows * m.cols) } in
  map2_into out ( -. ) m a;
  out

let scale k m =
  let out = { m with data = ba_create (m.rows * m.cols) } in
  for i = 0 to (m.rows * m.cols) - 1 do
    Bigarray.Array1.unsafe_set out.data i
      (k *. Bigarray.Array1.unsafe_get m.data i)
  done;
  out

(* In-place element-wise kernels; [dst] may alias either operand. *)

let add_into ~dst m a =
  check_same m a;
  check_same m dst;
  map2_into dst ( +. ) m a

let sub_into ~dst m a =
  check_same m a;
  check_same m dst;
  map2_into dst ( -. ) m a

let scale_into ~dst k m =
  check_same m dst;
  for i = 0 to (m.rows * m.cols) - 1 do
    Bigarray.Array1.unsafe_set dst.data i
      (k *. Bigarray.Array1.unsafe_get m.data i)
  done

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: shape mismatch";
  let out = create a.rows b.cols 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = unsafe_get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          unsafe_set out i j (unsafe_get out i j +. (aik *. unsafe_get b k j))
        done
    done
  done;
  out

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Matrix.mul_vec: shape mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (unsafe_get a i j *. x.(j))
      done;
      !acc)

let vec_mul x a =
  if a.rows <> Array.length x then invalid_arg "Matrix.vec_mul: shape mismatch";
  Array.init a.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. unsafe_get a i j)
      done;
      !acc)

let mul_vec_into a x ~dst =
  if a.cols <> Array.length x then
    invalid_arg "Matrix.mul_vec_into: shape mismatch";
  if a.rows <> Array.length dst then
    invalid_arg "Matrix.mul_vec_into: result dimension mismatch";
  (* Alias-safe: when [dst] is [x] itself, stage the product in the
     domain workspace before writing it back. *)
  let out =
    if dst == x then Workspace.float_array (Workspace.domain ()) a.rows
    else dst
  in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (unsafe_get a i j *. x.(j))
    done;
    out.(i) <- !acc
  done;
  if out != dst then Array.blit out 0 dst 0 a.rows

exception Singular

(* LU factorization with partial pivoting over a flat buffer, recording
   the row swapped with [k] at step [k] (LAPACK-style ipiv). Shared by
   the allocating and the in-place entry points so they are bitwise
   interchangeable. A non-finite pivot column (NaN/inf input) raises
   {!Singular} rather than silently propagating NaNs. *)
let factor_flat (a : ba) n (ipiv : int array) =
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry into (k,k). *)
    let best = ref k in
    let best_mag =
      ref (Float.abs (Bigarray.Array1.unsafe_get a ((k * n) + k)))
    in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (Bigarray.Array1.unsafe_get a ((i * n) + k)) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag = 0. || not (Float.is_finite !best_mag) then raise Singular;
    ipiv.(k) <- !best;
    if !best <> k then begin
      let rk = k * n and rb = !best * n in
      for j = 0 to n - 1 do
        let tmp = Bigarray.Array1.unsafe_get a (rk + j) in
        Bigarray.Array1.unsafe_set a (rk + j)
          (Bigarray.Array1.unsafe_get a (rb + j));
        Bigarray.Array1.unsafe_set a (rb + j) tmp
      done
    end;
    let pivot = Bigarray.Array1.unsafe_get a ((k * n) + k) in
    for i = k + 1 to n - 1 do
      let factor = Bigarray.Array1.unsafe_get a ((i * n) + k) /. pivot in
      Bigarray.Array1.unsafe_set a ((i * n) + k) factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          Bigarray.Array1.unsafe_set a ((i * n) + j)
            (Bigarray.Array1.unsafe_get a ((i * n) + j)
            -. (factor *. Bigarray.Array1.unsafe_get a ((k * n) + j)))
        done
    done
  done

(* Triangular solves against factors in a flat buffer, overwriting [x]
   (which must already be permuted per the factorization's swaps). *)
let substitute_flat (a : ba) n (x : float array) =
  (* Forward substitution with the unit lower triangle. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Bigarray.Array1.unsafe_get a ((i * n) + j) *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with the upper triangle. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Bigarray.Array1.unsafe_get a ((i * n) + j) *. x.(j))
    done;
    let pivot = Bigarray.Array1.unsafe_get a ((i * n) + i) in
    if pivot = 0. then raise Singular;
    x.(i) <- !acc /. pivot
  done

let apply_swaps (ipiv : int array) n (x : float array) =
  for k = 0 to n - 1 do
    let p = ipiv.(k) in
    if p <> k then begin
      let tmp = x.(k) in
      x.(k) <- x.(p);
      x.(p) <- tmp
    end
  done

type lu = { factors : t; pivots : int array; sign : float }

let lu_decompose m =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_decompose: not square";
  let n = m.rows in
  let a = copy m in
  let ipiv = Array.make n 0 in
  factor_flat a.data n ipiv;
  (* Fold the swap sequence into a permutation and its sign. *)
  let pivots = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    if ipiv.(k) <> k then begin
      let tmp = pivots.(k) in
      pivots.(k) <- pivots.(ipiv.(k));
      pivots.(ipiv.(k)) <- tmp;
      sign := -. !sign
    end
  done;
  { factors = a; pivots; sign = !sign }

let lu_solve { factors; pivots; _ } b =
  let n = factors.rows in
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: shape mismatch";
  let x = Array.init n (fun i -> b.(pivots.(i))) in
  substitute_flat factors.data n x;
  x

let lu_factor_in_place m ~pivots =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_factor_in_place: not square";
  if Array.length pivots <> m.rows then
    invalid_arg "Matrix.lu_factor_in_place: pivot array dimension mismatch";
  factor_flat m.data m.rows pivots

let lu_solve_in_place m ~pivots b =
  let n = m.rows in
  if Array.length b <> n then
    invalid_arg "Matrix.lu_solve_in_place: shape mismatch";
  apply_swaps pivots n b;
  substitute_flat m.data n b

let solve a b = lu_solve (lu_decompose a) b

(* Like {!solve} but staging the factorization in [ws], so repeated
   solves of same-sized systems allocate only the result vector. *)
let solve_ws ws a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: not square";
  let n = a.rows in
  if Array.length b <> n then invalid_arg "Matrix.solve: shape mismatch";
  let buf = Workspace.floats ws (n * n) in
  Bigarray.Array1.blit a.data buf;
  let ipiv = Workspace.ints ws n in
  factor_flat buf n ipiv;
  let x = Array.copy b in
  apply_swaps ipiv n x;
  substitute_flat buf n x;
  x

let solve_many a bs =
  let lu = lu_decompose a in
  List.map (lu_solve lu) bs

let inverse m =
  let n = m.rows in
  let lu = lu_decompose m in
  let out = create n n 0. in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let col = lu_solve lu e in
    for i = 0 to n - 1 do
      unsafe_set out i j col.(i)
    done
  done;
  out

let determinant m =
  match lu_decompose m with
  | { factors; sign; _ } ->
      let acc = ref sign in
      for i = 0 to factors.rows - 1 do
        acc := !acc *. unsafe_get factors i i
      done;
      !acc
  | exception Singular -> 0.

let residual_inf a x b = Vector.norm_inf (Vector.sub (mul_vec a x) b)

let equal ?(tol = 0.) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let n = a.rows * a.cols in
  let rec go k =
    k >= n
    || Float.abs
         (Bigarray.Array1.unsafe_get a.data k
         -. Bigarray.Array1.unsafe_get b.data k)
       <= tol
       && go (k + 1)
  in
  go 0

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (unsafe_get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
