(** Reusable scratch memory for the numeric kernels.

    A workspace owns growable buffers — a flat [float64] bigarray, a
    plain float array and an int array — that the dense and sparse
    solvers borrow instead of allocating per call. Buffers only ever
    grow (geometrically), so a steady-state workload such as candidate
    evaluation settles into an allocation-free loop.

    A workspace is not reentrant: each [floats]/[float_array]/[ints]
    call hands out (a prefix of) the same backing buffer, so a kernel
    must be done with its scratch before the next kernel borrows from
    the same workspace. Kernels that need several disjoint regions
    request one buffer and slice it themselves. Workspaces are not
    thread-safe either; use {!domain} for a per-domain instance. *)

type t

type floats =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : unit -> t
(** A fresh workspace with empty buffers. *)

val domain : unit -> t
(** The calling domain's workspace (domain-local storage) — the default
    scratch space of the solvers. *)

val floats : t -> int -> floats
(** [floats ws n] is a scratch bigarray of exactly [n] floats (a view
    of the backing buffer). Contents are unspecified — kernels must
    initialize what they read. Invalidated by the next [floats] call
    on [ws]. *)

val float_array : t -> int -> float array
(** Like {!floats} but a plain float array of length at least [n]
    (the same backing array is returned while it is big enough, so its
    physical length may exceed [n]). *)

val ints : t -> int -> int array
(** Like {!float_array} for ints. *)

val floats_capacity : t -> int
(** Current capacity of the bigarray buffer, in floats — exposed so
    tests can assert that reuse does not reallocate. *)
