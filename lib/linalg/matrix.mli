(** Dense float matrices with LU-based solvers.

    This is the numeric substrate for the Markov engine: solving linear
    systems for stationary distributions and mean times to absorption.
    Storage is a flat row-major [float64] bigarray; the [_into] and
    [_in_place] kernels below, combined with a {!Workspace}, keep the
    hot solve paths free of per-call allocation. *)

type t

val create : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_rows : float array array -> t
(** Copies its argument; rows must be non-empty and of equal length. *)

val to_rows : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst a b] stores [a + b] in [dst]; [dst] may alias either
    operand. *)

val sub_into : dst:t -> t -> t -> unit
val scale_into : dst:t -> float -> t -> unit
val mul : t -> t -> t
val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec a x] is [a x]. *)

val vec_mul : Vector.t -> t -> Vector.t
(** [vec_mul x a] is [xᵀ a], as a vector. *)

val mul_vec_into : t -> Vector.t -> dst:Vector.t -> unit
(** [mul_vec_into a x ~dst] stores [a x] in [dst]. Alias-safe: when
    [dst == x] the product is staged in the domain workspace. *)

exception Singular
(** Raised by the solvers when the matrix is (numerically) singular —
    including a pivot column that is NaN or infinite, so malformed
    inputs fail cleanly instead of propagating NaNs. *)

type lu
(** An LU factorization with partial pivoting. *)

val lu_decompose : t -> lu
(** Raises {!Singular} when a zero pivot is met. O(n³). *)

val lu_solve : lu -> Vector.t -> Vector.t

val lu_factor_in_place : t -> pivots:int array -> unit
(** Factors the matrix in place (unit lower + upper triangle packed in
    the storage), recording at [pivots.(k)] the row swapped with [k] at
    step [k]. [pivots] must have length [rows]. Raises {!Singular};
    bitwise-identical factors to {!lu_decompose}. *)

val lu_solve_in_place : t -> pivots:int array -> Vector.t -> unit
(** Solves against factors produced by {!lu_factor_in_place},
    overwriting the right-hand side with the solution. Allocation-free.
    Raises {!Singular} on a zero pivot. *)

val solve : t -> Vector.t -> Vector.t
(** [solve a b] returns [x] with [a x = b]. Raises {!Singular}. *)

val solve_ws : Workspace.t -> t -> Vector.t -> Vector.t
(** {!solve}, staging the factorization in the given workspace instead
    of allocating: bitwise the same solution, and only the result
    vector is freshly allocated. *)

val solve_many : t -> Vector.t list -> Vector.t list
(** Factorizes once and solves each right-hand side. *)

val inverse : t -> t
val determinant : t -> float
val residual_inf : t -> Vector.t -> Vector.t -> float
(** [residual_inf a x b] is [‖a x − b‖∞]. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
