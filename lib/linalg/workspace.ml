type floats =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable floats : floats;
  mutable float_array : float array;
  mutable ints : int array;
}

let create () =
  {
    floats = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0;
    float_array = [||];
    ints = [||];
  }

let key = Domain.DLS.new_key create
let domain () = Domain.DLS.get key

(* Geometric growth so a sequence of increasing requests settles after
   O(log n) reallocations. *)
let grown_capacity current requested =
  let c = Stdlib.max 16 current in
  let rec go c = if c >= requested then c else go (2 * c) in
  go c

let floats t n =
  if n < 0 then invalid_arg "Workspace.floats: negative size";
  if Bigarray.Array1.dim t.floats < n then
    t.floats <-
      Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
        (grown_capacity (Bigarray.Array1.dim t.floats) n);
  Bigarray.Array1.sub t.floats 0 n

let float_array t n =
  if n < 0 then invalid_arg "Workspace.float_array: negative size";
  if Array.length t.float_array < n then
    t.float_array <-
      Array.make (grown_capacity (Array.length t.float_array) n) 0.;
  t.float_array

let ints t n =
  if n < 0 then invalid_arg "Workspace.ints: negative size";
  if Array.length t.ints < n then
    t.ints <- Array.make (grown_capacity (Array.length t.ints) n) 0;
  t.ints

let floats_capacity t = Bigarray.Array1.dim t.floats
